"""The WhoWas platform core: scanner, fetcher, features, store.

This is the paper's primary contribution (§4): a pipeline that probes
cloud IP ranges, fetches top-level pages, extracts content features and
persists per-round records behind a programmatic lookup API.
"""

from .config import (
    FetchConfig,
    GuardConfig,
    PipelineConfig,
    PlatformConfig,
    ScanConfig,
    WorkerConfig,
)
from .crawler import Crawler, CrawlResult
from .faults import (
    HOSTILE_CONTENT_KINDS,
    FaultKind,
    FaultPlan,
    FaultRule,
    FaultyTransport,
    ProcessChaosPlan,
    ProcFaultKind,
    ProcFaultRule,
    chaos_plan,
    hostile_plan,
    proc_chaos_plan,
)
from .features import FeatureExtractor, extract_internal_links, extract_links
from .fetcher import Fetcher, decode_body, parse_robots
from .guard import (
    AimdController,
    GuardVerdict,
    StageDeadlineExceeded,
    Supervisor,
)
from .pipeline import BoundedShardQueue, RoundPipeline, ShardWork
from .platform import RoundInterrupted, RoundSummary, WhoWas
from .records import (
    UNKNOWN,
    FetchResult,
    FetchStatus,
    PageFeatures,
    PipelineStats,
    Port,
    ProbeOutcome,
    ProbeStatus,
    QuarantineRecord,
    RoundRecord,
    StageStats,
)
from .scanner import RateLimiter, Scanner, SubnetCircuitBreaker
from .simhash import HASH_BITS, hamming_distance, simhash
from .store import (
    MeasurementStore,
    RoundInfo,
    RoundVerification,
    ShardJournalEntry,
    ShardPayload,
    shard_checksum,
)
from .workers import (
    PartitionSpec,
    WorkerRoundReport,
    WorkerSupervisor,
    WorkerTask,
    partition_shards,
    run_partition,
)
from .transport import (
    BodyTruncated,
    ConnectionRefused,
    ConnectTimeout,
    HttpResponse,
    ProtocolError,
    RoundAware,
    SocketTransport,
    Transport,
    TransportError,
    classify_error,
)

__all__ = [
    "FetchConfig",
    "GuardConfig",
    "PipelineConfig",
    "PlatformConfig",
    "ScanConfig",
    "WorkerConfig",
    "BoundedShardQueue",
    "RoundPipeline",
    "ShardWork",
    "Crawler",
    "CrawlResult",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "FaultyTransport",
    "chaos_plan",
    "hostile_plan",
    "proc_chaos_plan",
    "ProcessChaosPlan",
    "ProcFaultKind",
    "ProcFaultRule",
    "HOSTILE_CONTENT_KINDS",
    "FeatureExtractor",
    "extract_internal_links",
    "extract_links",
    "Fetcher",
    "decode_body",
    "parse_robots",
    "AimdController",
    "GuardVerdict",
    "StageDeadlineExceeded",
    "Supervisor",
    "RoundInterrupted",
    "RoundSummary",
    "WhoWas",
    "UNKNOWN",
    "FetchResult",
    "FetchStatus",
    "PageFeatures",
    "PipelineStats",
    "Port",
    "ProbeOutcome",
    "ProbeStatus",
    "QuarantineRecord",
    "RoundRecord",
    "StageStats",
    "RateLimiter",
    "Scanner",
    "SubnetCircuitBreaker",
    "HASH_BITS",
    "hamming_distance",
    "simhash",
    "MeasurementStore",
    "RoundInfo",
    "RoundVerification",
    "ShardJournalEntry",
    "ShardPayload",
    "shard_checksum",
    "PartitionSpec",
    "WorkerRoundReport",
    "WorkerSupervisor",
    "WorkerTask",
    "partition_shards",
    "run_partition",
    "HttpResponse",
    "SocketTransport",
    "Transport",
    "RoundAware",
    "TransportError",
    "ConnectTimeout",
    "ConnectionRefused",
    "ProtocolError",
    "BodyTruncated",
    "classify_error",
]
