"""Record types flowing through the WhoWas pipeline.

The pipeline is scanner → fetcher → feature generator → store (§4 of the
paper).  Each stage has a dedicated record type; a :class:`RoundRecord`
is the fully-populated row persisted for one IP in one round of scanning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "Port",
    "ProbeStatus",
    "ProbeOutcome",
    "FetchStatus",
    "FetchResult",
    "PageFeatures",
    "RoundRecord",
    "QuarantineRecord",
    "StageStats",
    "PipelineStats",
    "UNKNOWN",
]

#: Placeholder for features missing from the HTML or headers (§4:
#: "We mark entries as unknown when they are missing").
UNKNOWN = "unknown"


class Port(enum.IntEnum):
    """The three ports WhoWas probes (§4)."""

    HTTP = 80
    HTTPS = 443
    SSH = 22


class ProbeStatus(enum.Enum):
    """Result of the TCP SYN probe stage for one IP."""

    #: At least one probed port accepted a connection.
    RESPONSIVE = "responsive"
    #: All probes timed out or were refused.
    UNRESPONSIVE = "unresponsive"
    #: IP was on the do-not-scan blacklist and was never probed.
    SKIPPED = "skipped"
    #: IP's /24 subnet tripped the scanner's circuit breaker this round
    #: (too many consecutive classified errors) and was never probed.
    CIRCUIT_OPEN = "circuit-open"


@dataclass(frozen=True)
class ProbeOutcome:
    """Which ports answered for one IP in one round."""

    ip: int
    status: ProbeStatus
    open_ports: frozenset[int] = frozenset()
    #: Taxonomy label of the last classified probe failure for this IP
    #: (:attr:`repro.core.transport.TransportError.kind`), or None when
    #: every probe either succeeded or failed silently.
    error_class: str | None = None

    @property
    def responsive(self) -> bool:
        return self.status is ProbeStatus.RESPONSIVE

    @property
    def wants_fetch(self) -> bool:
        """True if the fetcher should visit this IP (80 or 443 open)."""
        return bool(self.open_ports & {Port.HTTP, Port.HTTPS})

    @property
    def scheme(self) -> str | None:
        """URL scheme the fetcher will use, per §4: "http://" if port 80
        was open (alone or with 443), "https://" if only 443 was open."""
        if Port.HTTP in self.open_ports:
            return "http"
        if Port.HTTPS in self.open_ports:
            return "https"
        return None

    def port_profile(self) -> str:
        """Port combination label used in Table 3."""
        has_http = Port.HTTP in self.open_ports
        has_https = Port.HTTPS in self.open_ports
        if has_http and has_https:
            return "80&443"
        if has_http:
            return "80-only"
        if has_https:
            return "443-only"
        if Port.SSH in self.open_ports:
            return "22-only"
        return "none"


class FetchStatus(enum.Enum):
    """Result of the HTTP fetch stage."""

    OK = "ok"                       # got an HTTP response (any status code)
    ERROR = "error"                 # connection/protocol error
    ROBOTS_DISALLOWED = "robots"    # robots.txt forbids fetching /
    NOT_ATTEMPTED = "not-attempted"  # no web port open


@dataclass(frozen=True)
class FetchResult:
    """Outcome of fetching the top-level page of one IP.

    ``body`` holds at most the first 512 KB of *text* content; non-text
    content types are never downloaded (§4).
    """

    ip: int
    status: FetchStatus
    url: str = ""
    status_code: int | None = None
    headers: Mapping[str, str] = field(default_factory=dict)
    body: str | None = None
    error: str | None = None
    #: Taxonomy label of the transport failure (see
    #: :func:`repro.core.transport.classify_error`); None unless
    #: ``status`` is :attr:`FetchStatus.ERROR`.
    error_class: str | None = None

    @property
    def available(self) -> bool:
        """§4: an IP is *available* in a round if the HTTP(S) request for
        the URL (without robots.txt) succeeded — i.e. any HTTP response
        came back, whatever its status code.  This matches Table 7's
        available/responsive ratio (~68% on EC2); Table 4 separately
        breaks the responses down by status class."""
        return self.status is FetchStatus.OK and self.status_code is not None

    @property
    def content_type(self) -> str:
        value = ""
        for name, header_value in self.headers.items():
            if name.lower() == "content-type":
                value = header_value
                break
        return value.split(";")[0].strip().lower()

    def status_class(self) -> str:
        """Status-code class label used in Table 4."""
        if self.status_code is None:
            return "other"
        if self.status_code == 200:
            return "200"
        if 400 <= self.status_code < 500:
            return "4xx"
        if 500 <= self.status_code < 600:
            return "5xx"
        return "other"


@dataclass(frozen=True)
class PageFeatures:
    """The ten features extracted per fetched page (§4)."""

    powered_by: str = UNKNOWN        # (1) "x-powered-by" response header
    description: str = UNKNOWN       # (2) <meta name="description">
    header_string: str = UNKNOWN     # (3) sorted header names joined by '#'
    html_length: int = 0             # (4) length of returned HTML
    title: str = UNKNOWN             # (5) <title> string
    template: str = UNKNOWN          # (6) <meta name="generator"> template
    server: str = UNKNOWN            # (7) Server response header
    keywords: str = UNKNOWN          # (8) <meta name="keywords">
    analytics_id: str = UNKNOWN      # (9) Google Analytics ID
    simhash: int = 0                 # (10) 96-bit simhash of the HTML

    def level1_key(self) -> tuple[str, str, str, str, str]:
        """The five features used for first-level clustering (§5):
        title, template, server, keywords, and Analytics ID."""
        return (self.title, self.template, self.server,
                self.keywords, self.analytics_id)


@dataclass(frozen=True)
class QuarantineRecord:
    """One dead-letter row: a per-IP unit of work the supervision layer
    had to neutralise (deadline kill, trapped exception, or hostile
    content) instead of letting it take the round down.

    Quarantined pages still produce a (possibly sentinel) round record;
    this row is the side channel that lets ``repro quarantine replay``
    re-process them once the extractor is fixed.
    """

    ip: int
    round_id: int
    timestamp: int
    #: Pipeline stage that tripped: ``"fetch"`` or ``"extract"``.
    stage: str
    #: Guard verdict label (:class:`repro.core.guard.GuardVerdict`).
    verdict: str
    #: Exception class name, when an exception was trapped.
    error_class: str | None = None
    #: Truncated exception message.
    error: str | None = None
    #: Truncated offending payload (body excerpt) for post-mortem.
    payload: str = ""
    #: Store row id; set when loaded from a database.
    entry_id: int | None = None
    #: True once ``repro quarantine replay`` re-processed this entry.
    replayed: bool = False

    def to_row(self) -> dict:
        return {
            "ip": self.ip,
            "round_id": self.round_id,
            "timestamp": self.timestamp,
            "stage": self.stage,
            "verdict": self.verdict,
            "error_class": self.error_class,
            "error": self.error,
            "payload": self.payload,
            "replayed": int(self.replayed),
        }

    @classmethod
    def from_row(cls, row: Mapping) -> "QuarantineRecord":
        keys = row.keys() if hasattr(row, "keys") else row
        return cls(
            ip=row["ip"],
            round_id=row["round_id"],
            timestamp=row["timestamp"],
            stage=row["stage"],
            verdict=row["verdict"],
            error_class=row["error_class"],
            error=row["error"],
            payload=row["payload"],
            entry_id=row["entry_id"] if "entry_id" in keys else None,
            replayed=bool(row["replayed"]) if "replayed" in keys else False,
        )


@dataclass
class StageStats:
    """Throughput telemetry for one pipeline stage in one round.

    ``busy_seconds`` is time the stage spent actually processing shards
    (not waiting on its input queue), so ``items / busy_seconds`` is the
    stage's intrinsic throughput and the stage with the largest
    ``busy_seconds`` is the round's bottleneck.
    """

    name: str
    #: Shards this stage processed.
    shards: int = 0
    #: Stage-specific work items (targets scanned, pages fetched,
    #: records extracted, rows written).
    items: int = 0
    #: Wall-clock spent processing (excludes queue waits).
    busy_seconds: float = 0.0
    #: High-water mark of the stage's *output* queue (shards buffered
    #: downstream); 0 in serial mode where nothing is ever queued.
    queue_peak: int = 0
    #: Times the stage stalled because its output queue was full — the
    #: backpressure signal (includes AIMD-shrunk capacity).
    backpressure_waits: int = 0

    @property
    def items_per_second(self) -> float:
        return self.items / self.busy_seconds if self.busy_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "shards": self.shards,
            "items": self.items,
            "busy_seconds": self.busy_seconds,
            "queue_peak": self.queue_peak,
            "backpressure_waits": self.backpressure_waits,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StageStats":
        return cls(**dict(data))


@dataclass
class PipelineStats:
    """Per-round snapshot of the streaming pipeline's behaviour.

    Attached to :class:`~repro.core.platform.RoundSummary` and persisted
    as JSON in ``campaign_meta`` (key ``pipeline_stats:<round_id>``) so
    ``repro stats`` can reconstruct the throughput picture later.
    """

    #: ``"overlapped"`` (streaming stage-parallel), ``"serial"``, or
    #: ``"multiprocess"`` (partitioned worker pool).
    mode: str
    #: Wall-clock of the whole round body (shard processing + drain).
    wall_seconds: float = 0.0
    records_written: int = 0
    shards_written: int = 0
    #: Store commits issued by the round's writes.
    writer_flushes: int = 0
    #: Total / worst-case time inside those commits.
    writer_flush_seconds: float = 0.0
    writer_max_flush_seconds: float = 0.0
    #: Largest number of shards committed in one batch transaction.
    writer_max_batch: int = 0
    # -- multi-process supervision telemetry (zero outside --workers) --
    #: Size of the worker pool the round started with.
    worker_count: int = 0
    #: Worker processes killed (missed heartbeat) or found dead
    #: (nonzero exit / incomplete journal) and replaced.
    worker_restarts: int = 0
    #: Partitions put back on the queue after a worker failure.
    partition_reassignments: int = 0
    #: Partitions that exhausted their retries and fell back to an
    #: inline run in the coordinator (forces the round degraded).
    partitions_failed: int = 0
    #: Partition journals whose shards were merged into the store
    #: (includes salvaged journals from a crashed coordinator).
    partitions_merged: int = 0
    #: Oldest heartbeat age observed across all workers, seconds.
    max_heartbeat_age: float = 0.0
    stages: dict[str, StageStats] = field(default_factory=dict)
    #: Multi-process rounds only: per-partition stage stats keyed by
    #: partition index (as a string, for JSON round-tripping), so
    #: ``repro stats`` can attribute the merged ``stages`` view back to
    #: individual workers instead of showing an anonymous sum.
    partitions: dict[str, dict[str, StageStats]] = field(
        default_factory=dict
    )

    @property
    def records_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.records_written / self.wall_seconds

    def stage(self, name: str) -> StageStats:
        """The named stage's stats, created on first use."""
        if name not in self.stages:
            self.stages[name] = StageStats(name=name)
        return self.stages[name]

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "records_written": self.records_written,
            "shards_written": self.shards_written,
            "writer_flushes": self.writer_flushes,
            "writer_flush_seconds": self.writer_flush_seconds,
            "writer_max_flush_seconds": self.writer_max_flush_seconds,
            "writer_max_batch": self.writer_max_batch,
            "worker_count": self.worker_count,
            "worker_restarts": self.worker_restarts,
            "partition_reassignments": self.partition_reassignments,
            "partitions_failed": self.partitions_failed,
            "partitions_merged": self.partitions_merged,
            "max_heartbeat_age": self.max_heartbeat_age,
            "stages": {
                name: stage.to_dict() for name, stage in self.stages.items()
            },
            "partitions": {
                index: {
                    name: stage.to_dict()
                    for name, stage in stages.items()
                }
                for index, stages in self.partitions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineStats":
        payload = dict(data)
        payload["stages"] = {
            name: StageStats.from_dict(stage)
            for name, stage in payload.get("stages", {}).items()
        }
        # Stats persisted before per-partition attribution lack the key.
        payload["partitions"] = {
            str(index): {
                name: StageStats.from_dict(stage)
                for name, stage in stages.items()
            }
            for index, stages in payload.get("partitions", {}).items()
        }
        return cls(**payload)


@dataclass(frozen=True)
class RoundRecord:
    """One fully-processed row: one IP in one round of scanning."""

    ip: int
    round_id: int
    timestamp: int                      # day index of the round
    probe: ProbeOutcome
    fetch: FetchResult
    features: PageFeatures | None = None
    #: SSH banner read from port 22, when banner grabbing is enabled.
    ssh_banner: str | None = None

    @property
    def responsive(self) -> bool:
        return self.probe.responsive

    @property
    def available(self) -> bool:
        return self.fetch.available

    def to_row(self) -> dict:
        """Flatten into primitive columns for persistence."""
        features = self.features or PageFeatures()
        return {
            "ip": self.ip,
            "round_id": self.round_id,
            "timestamp": self.timestamp,
            "probe_status": self.probe.status.value,
            "open_ports": ",".join(str(p) for p in sorted(self.probe.open_ports)),
            "fetch_status": self.fetch.status.value,
            "url": self.fetch.url,
            "status_code": self.fetch.status_code,
            "content_type": self.fetch.content_type,
            "headers": "\n".join(
                f"{k}: {v}" for k, v in self.fetch.headers.items()
            ),
            "body": self.fetch.body,
            "error": self.fetch.error,
            "error_class": self.fetch.error_class,
            "probe_error_class": self.probe.error_class,
            "powered_by": features.powered_by,
            "description": features.description,
            "header_string": features.header_string,
            "html_length": features.html_length,
            "title": features.title,
            "template": features.template,
            "server": features.server,
            "keywords": features.keywords,
            "analytics_id": features.analytics_id,
            "simhash": f"{features.simhash:024x}",
            "ssh_banner": self.ssh_banner,
        }

    @classmethod
    def from_row(cls, row: Mapping) -> "RoundRecord":
        """Inverse of :meth:`to_row`."""
        open_ports = frozenset(
            int(p) for p in row["open_ports"].split(",") if p
        )
        headers = {}
        if row["headers"]:
            for line in row["headers"].split("\n"):
                name, _, value = line.partition(": ")
                headers[name] = value
        keys = row.keys() if hasattr(row, "keys") else row
        probe = ProbeOutcome(
            ip=row["ip"],
            status=ProbeStatus(row["probe_status"]),
            open_ports=open_ports,
            error_class=(
                row["probe_error_class"] if "probe_error_class" in keys else None
            ),
        )
        fetch = FetchResult(
            ip=row["ip"],
            status=FetchStatus(row["fetch_status"]),
            url=row["url"],
            status_code=row["status_code"],
            headers=headers,
            body=row["body"],
            error=row["error"],
            error_class=row["error_class"] if "error_class" in keys else None,
        )
        # Features exist only for records with stored page content; the
        # writer serialises defaults for feature-less rows, so body
        # presence is the authoritative marker.
        features = None
        if row["body"] is not None:
            features = PageFeatures(
                powered_by=row["powered_by"],
                description=row["description"],
                header_string=row["header_string"],
                html_length=row["html_length"],
                title=row["title"],
                template=row["template"],
                server=row["server"],
                keywords=row["keywords"],
                analytics_id=row["analytics_id"],
                simhash=int(row["simhash"], 16),
            )
        return cls(
            ip=row["ip"],
            round_id=row["round_id"],
            timestamp=row["timestamp"],
            probe=probe,
            fetch=fetch,
            features=features,
            ssh_banner=row["ssh_banner"] if "ssh_banner" in keys else None,
        )
