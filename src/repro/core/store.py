"""The WhoWas measurement database (§4).

Mirrors the paper's storage layout: **each round of scanning uses a
distinct table**, with the round's timestamp in the table name, plus a
``rounds`` metadata table.  Backed by sqlite3 (file or ``:memory:``)
instead of MySQL; the schema and the programmatic lookup API — "give me
the history of status and content for this IP address over time" — are
the same.

Only *responsive* IPs produce rows (the target list is known, so
unresponsiveness is encoded by absence), which keeps a campaign's
database proportional to cloud usage rather than address-space size.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Iterable, Iterator

from .records import RoundRecord

__all__ = ["RoundInfo", "MeasurementStore"]

_COLUMNS: tuple[tuple[str, str], ...] = (
    ("ip", "INTEGER NOT NULL"),
    ("round_id", "INTEGER NOT NULL"),
    ("timestamp", "INTEGER NOT NULL"),
    ("probe_status", "TEXT NOT NULL"),
    ("open_ports", "TEXT NOT NULL"),
    ("fetch_status", "TEXT NOT NULL"),
    ("url", "TEXT"),
    ("status_code", "INTEGER"),
    ("content_type", "TEXT"),
    ("headers", "TEXT"),
    ("body", "TEXT"),
    ("error", "TEXT"),
    ("error_class", "TEXT"),
    ("probe_error_class", "TEXT"),
    ("powered_by", "TEXT"),
    ("description", "TEXT"),
    ("header_string", "TEXT"),
    ("html_length", "INTEGER"),
    ("title", "TEXT"),
    ("template", "TEXT"),
    ("server", "TEXT"),
    ("keywords", "TEXT"),
    ("analytics_id", "TEXT"),
    ("simhash", "TEXT"),
    ("ssh_banner", "TEXT"),
)

_COLUMN_NAMES = tuple(name for name, _ in _COLUMNS)


@dataclass(frozen=True)
class RoundInfo:
    """Metadata about one round of scanning."""

    round_id: int
    timestamp: int          # day index when the round started
    targets_probed: int
    responsive_count: int
    #: True when the round blew its error budget (too many classified
    #: transport failures): the data is persisted but suspect.
    degraded: bool = False
    #: Classified transport errors observed during the round.
    error_count: int = 0

    @property
    def table_name(self) -> str:
        return f"round_{self.timestamp:05d}"


class MeasurementStore:
    """sqlite3-backed store with one table per scan round."""

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS rounds ("
            "  round_id INTEGER PRIMARY KEY,"
            "  timestamp INTEGER NOT NULL,"
            "  targets_probed INTEGER NOT NULL,"
            "  responsive_count INTEGER NOT NULL,"
            "  degraded INTEGER NOT NULL DEFAULT 0,"
            "  error_count INTEGER NOT NULL DEFAULT 0"
            ")"
        )
        self._migrate_rounds_table()
        self._conn.commit()

    def _migrate_rounds_table(self) -> None:
        """Add the resilience columns to databases written before they
        existed (older files lack ``degraded``/``error_count``)."""
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(rounds)")
        }
        for name in ("degraded", "error_count"):
            if name not in existing:
                self._conn.execute(
                    f"ALTER TABLE rounds ADD COLUMN {name} "
                    "INTEGER NOT NULL DEFAULT 0"
                )

    # ------------------------------------------------------------------
    # writes

    def write_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        records: Iterable[RoundRecord],
        *,
        degraded: bool = False,
        error_count: int = 0,
    ) -> RoundInfo:
        """Persist one complete round into its own table."""
        info_rows = list(records)
        table = f"round_{timestamp:05d}"
        columns_sql = ", ".join(f"{name} {sql}" for name, sql in _COLUMNS)
        self._conn.execute(f"DROP TABLE IF EXISTS {table}")
        self._conn.execute(f"CREATE TABLE {table} ({columns_sql})")
        placeholders = ", ".join("?" for _ in _COLUMN_NAMES)
        self._conn.executemany(
            f"INSERT INTO {table} ({', '.join(_COLUMN_NAMES)}) "
            f"VALUES ({placeholders})",
            (
                tuple(record.to_row()[name] for name in _COLUMN_NAMES)
                for record in info_rows
            ),
        )
        self._conn.execute(f"CREATE INDEX idx_{table}_ip ON {table} (ip)")
        self._conn.execute(
            "INSERT OR REPLACE INTO rounds VALUES (?, ?, ?, ?, ?, ?)",
            (
                round_id, timestamp, targets_probed, len(info_rows),
                int(degraded), error_count,
            ),
        )
        self._conn.commit()
        return RoundInfo(
            round_id, timestamp, targets_probed, len(info_rows),
            degraded=degraded, error_count=error_count,
        )

    # ------------------------------------------------------------------
    # reads

    _ROUND_COLUMNS = (
        "round_id, timestamp, targets_probed, responsive_count, "
        "degraded, error_count"
    )

    @staticmethod
    def _round_info(row) -> RoundInfo:
        return RoundInfo(
            row["round_id"], row["timestamp"], row["targets_probed"],
            row["responsive_count"],
            degraded=bool(row["degraded"]), error_count=row["error_count"],
        )

    def rounds(self) -> list[RoundInfo]:
        """All rounds in chronological order (round_id breaks timestamp
        ties so the ordering is stable)."""
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds "
            "ORDER BY timestamp, round_id"
        )
        return [self._round_info(row) for row in cursor.fetchall()]

    def round_info(self, round_id: int) -> RoundInfo:
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds WHERE round_id = ?",
            (round_id,),
        )
        row = cursor.fetchone()
        if row is None:
            raise KeyError(f"no such round: {round_id}")
        return self._round_info(row)

    def records(self, round_id: int) -> Iterator[RoundRecord]:
        """All records of one round."""
        info = self.round_info(round_id)
        cursor = self._conn.execute(f"SELECT * FROM {info.table_name}")
        for row in cursor:
            yield RoundRecord.from_row(row)

    def record(self, round_id: int, ip: int) -> RoundRecord | None:
        """One IP's record in one round, or None if unresponsive then."""
        info = self.round_info(round_id)
        cursor = self._conn.execute(
            f"SELECT * FROM {info.table_name} WHERE ip = ?", (ip,)
        )
        row = cursor.fetchone()
        return RoundRecord.from_row(row) if row else None

    def history(self, ip: int) -> list[RoundRecord]:
        """The WhoWas lookup: the full status/content history of an IP,
        in chronological order (absent rounds = unresponsive)."""
        history: list[RoundRecord] = []
        for info in self.rounds():
            cursor = self._conn.execute(
                f"SELECT * FROM {info.table_name} WHERE ip = ?", (ip,)
            )
            row = cursor.fetchone()
            if row is not None:
                history.append(RoundRecord.from_row(row))
        return history

    def responsive_ips(self, round_id: int) -> set[int]:
        info = self.round_info(round_id)
        cursor = self._conn.execute(f"SELECT ip FROM {info.table_name}")
        return {row[0] for row in cursor.fetchall()}

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "MeasurementStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
