"""The WhoWas measurement database (§4).

Mirrors the paper's storage layout: **each round of scanning uses a
distinct table**, with the round's timestamp in the table name, plus a
``rounds`` metadata table.  Backed by sqlite3 (file or ``:memory:``)
instead of MySQL; the schema and the programmatic lookup API — "give me
the history of status and content for this IP address over time" — are
the same.

Only *responsive* IPs produce rows (the target list is known, so
unresponsiveness is encoded by absence), which keeps a campaign's
database proportional to cloud usage rather than address-space size.

Crash safety
------------
The paper's campaigns run for months; losing one to a mid-round crash
is unacceptable.  File-backed stores therefore run sqlite in WAL mode,
and writes follow a **journaled round protocol**:

* :meth:`begin_round` registers the round as ``in_progress`` and
  creates its table;
* :meth:`write_shard` commits one shard of records atomically and
  idempotently (re-writing a shard that already committed is a no-op,
  so a resumed process never duplicates rows);
* :meth:`finalize_round` marks the round ``complete`` (or
  ``degraded``) and makes it visible to :meth:`rounds`.

A crash between shards leaves a resumable partial round that
:meth:`open_rounds` surfaces and :meth:`completed_shards` describes;
:meth:`delete_partial` discards one instead.  The legacy one-shot
:meth:`write_round` is a thin wrapper over the protocol.

The ``campaign_meta`` key/value table carries campaign-level progress
(scenario name, completed days, seeds) so ``repro resume`` can pick a
campaign back up from the database alone.

Shard integrity
---------------
Every committed shard journals a **checksum**: a blake2b digest over
the canonical JSON of its rows, in insertion order.  Checksums make
torn or tampered data detectable — the multi-process coordinator
verifies a partition journal's shards before merging them into the
canonical store, and ``repro verify`` recomputes every round's shard
digests offline (:meth:`verify_round`).  Each row also carries the
``shard_index`` it was committed under, so rows can be attributed to
their journal entry regardless of the order shards landed in.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .backoff import backoff_delay
from .records import PageFeatures, QuarantineRecord, RoundRecord
from . import telemetry as _telemetry

__all__ = [
    "ROUND_IN_PROGRESS",
    "ROUND_COMPLETE",
    "ROUND_DEGRADED",
    "RoundInfo",
    "ShardPayload",
    "ShardJournalEntry",
    "RoundVerification",
    "MeasurementStore",
    "shard_checksum",
    "is_interrupted",
]


def is_interrupted(exc: BaseException) -> bool:
    """True when *exc* is sqlite aborting a statement mid-flight — the
    error a :meth:`MeasurementStore.read_deadline` expiry (or an
    explicit ``Connection.interrupt()``) surfaces as."""
    return (
        isinstance(exc, sqlite3.OperationalError)
        and "interrupt" in str(exc).lower()
    )

#: ``rounds.round_status`` values of the journaled protocol.
ROUND_IN_PROGRESS = "in_progress"
ROUND_COMPLETE = "complete"
ROUND_DEGRADED = "degraded"

_COLUMNS: tuple[tuple[str, str], ...] = (
    ("ip", "INTEGER NOT NULL"),
    ("round_id", "INTEGER NOT NULL"),
    ("timestamp", "INTEGER NOT NULL"),
    ("probe_status", "TEXT NOT NULL"),
    ("open_ports", "TEXT NOT NULL"),
    ("fetch_status", "TEXT NOT NULL"),
    ("url", "TEXT"),
    ("status_code", "INTEGER"),
    ("content_type", "TEXT"),
    ("headers", "TEXT"),
    ("body", "TEXT"),
    ("error", "TEXT"),
    ("error_class", "TEXT"),
    ("probe_error_class", "TEXT"),
    ("powered_by", "TEXT"),
    ("description", "TEXT"),
    ("header_string", "TEXT"),
    ("html_length", "INTEGER"),
    ("title", "TEXT"),
    ("template", "TEXT"),
    ("server", "TEXT"),
    ("keywords", "TEXT"),
    ("analytics_id", "TEXT"),
    ("simhash", "TEXT"),
    ("ssh_banner", "TEXT"),
)

_COLUMN_NAMES = tuple(name for name, _ in _COLUMNS)


def shard_checksum(rows: Iterable[Mapping]) -> str:
    """Digest of one shard's rows (insertion order): blake2b over each
    row's canonical JSON (:meth:`RoundRecord.to_row` dicts with sorted
    keys).  Written to ``round_shards.checksum`` at commit time and
    recomputed by :meth:`MeasurementStore.verify_round` and the
    partition-journal merge."""
    digest = hashlib.blake2b(digest_size=16)
    for row in rows:
        digest.update(
            json.dumps(
                dict(row), sort_keys=True, separators=(",", ":"),
                ensure_ascii=False,
            ).encode("utf-8")
        )
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class RoundInfo:
    """Metadata about one round of scanning."""

    round_id: int
    timestamp: int          # day index when the round started
    targets_probed: int
    responsive_count: int
    #: True when the round blew its error budget (too many classified
    #: transport failures): the data is persisted but suspect.
    degraded: bool = False
    #: Classified transport errors observed during the round.
    error_count: int = 0
    #: Journal state: ``in_progress`` while shards are still being
    #: written, ``complete``/``degraded`` once finalized.
    status: str = ROUND_COMPLETE
    #: Shard size the round was written with (0 = single-shot write);
    #: a resumed round must reuse it so shard indices line up.
    shard_size: int = 0

    #: Wall-clock seconds the round engine spent producing the round
    #: (the finalizing invocation's time; a crash-resumed round reports
    #: the resuming run's duration — earlier attempts' clocks died with
    #: their process).
    duration_seconds: float = 0.0

    @property
    def table_name(self) -> str:
        return f"round_{self.timestamp:05d}"

    @property
    def in_progress(self) -> bool:
        return self.status == ROUND_IN_PROGRESS


@dataclass(frozen=True)
class ShardPayload:
    """One shard's worth of data queued for the store writer.

    The batch API (:meth:`MeasurementStore.write_shards`) takes a
    sequence of these and commits them in a single transaction.
    """

    shard_index: int
    records: tuple[RoundRecord, ...]
    errors: int = 0
    operations: int = 0
    quarantine: tuple[QuarantineRecord, ...] = ()


@dataclass(frozen=True)
class ShardJournalEntry:
    """One row of the ``round_shards`` journal."""

    round_id: int
    shard_index: int
    record_count: int
    errors: int = 0
    operations: int = 0
    #: blake2b digest of the shard's rows ('' for pre-checksum shards).
    checksum: str = ""
    #: Quarantine entries committed with the shard.
    quarantine_count: int = 0


@dataclass
class RoundVerification:
    """Result of :meth:`MeasurementStore.verify_round`: the round
    journal walked, per-shard checksums recomputed."""

    round_id: int
    timestamp: int
    status: str
    #: Shards present in the journal.
    shards: int = 0
    #: Shards whose recomputed digest matched the journaled one.
    verified: int = 0
    #: Expected shard indices with no journal entry (finalized rounds).
    missing: list[int] = field(default_factory=list)
    #: Shards whose rows no longer match their journaled checksum or
    #: record count.
    corrupt: list[int] = field(default_factory=list)
    #: Shards written before checksums existed (nothing to verify).
    unverifiable: list[int] = field(default_factory=list)
    #: Rows in the round table not attributed to any journaled shard.
    orphan_rows: int = 0
    #: Quarantine entries not attributed to any journaled shard.
    orphan_quarantine: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.missing and not self.corrupt
            and self.orphan_rows == 0 and self.orphan_quarantine == 0
        )

    def describe(self) -> str:
        """One human-readable line for ``repro verify``."""
        parts = [f"{self.verified}/{self.shards} shards verified"]
        if self.unverifiable:
            parts.append(f"{len(self.unverifiable)} unverifiable (legacy)")
        if self.missing:
            parts.append(f"MISSING shards {self.missing}")
        if self.corrupt:
            parts.append(f"CORRUPT shards {self.corrupt}")
        if self.orphan_rows:
            parts.append(f"{self.orphan_rows} orphan rows")
        if self.orphan_quarantine:
            parts.append(f"{self.orphan_quarantine} orphan quarantine entries")
        state = "ok" if self.ok else "FAIL"
        return (
            f"round {self.round_id} (day {self.timestamp}, {self.status}): "
            f"{state} — " + ", ".join(parts)
        )


class MeasurementStore:
    """sqlite3-backed store with one table per scan round."""

    def __init__(
        self,
        path: str = ":memory:",
        *,
        busy_timeout_ms: int = 5_000,
        busy_retries: int = 5,
        busy_backoff_base: float = 0.05,
        busy_backoff_max: float = 1.0,
        readonly: bool = False,
    ):
        #: The database file this store is backed by (":memory:" for
        #: ephemeral stores) — the coordinator derives partition-journal
        #: paths from it.
        self.path = path
        #: True for stores opened through :meth:`open_readonly` — the
        #: connection can never take a write lock on the database.
        self.readonly = readonly
        # Contended writers (coordinator merge vs. a live reader, or
        # two processes sharing a file) surface as SQLITE_BUSY; the
        # busy_timeout handles intra-transaction waits and _commit()
        # adds a bounded jittered retry loop on top.
        self._busy_retries = busy_retries
        self._busy_backoff_base = busy_backoff_base
        self._busy_backoff_max = busy_backoff_max
        self._busy_random = random.Random()  # jitter only, never data
        # The pipeline's writer stage may run batch commits in a worker
        # thread (PipelineConfig.writer_offload) so fsync never blocks
        # the event loop; the RLock serialises all connection access.
        if readonly:
            if path == ":memory:":
                raise ValueError("cannot open an in-memory store read-only")
            self._conn = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, check_same_thread=False
            )
        else:
            self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        #: Writer telemetry, fed into PipelineStats by the platform.
        self._writer_stats = {
            "shard_commits": 0,
            "flush_count": 0,
            "flush_seconds": 0.0,
            "max_flush_seconds": 0.0,
            "max_batch_shards": 0,
        }
        tel = _telemetry.get()
        self._m_commits = tel.counter(
            "repro_store_commits_total",
            "Shard-write transactions committed by the store",
        )
        self._m_commit_seconds = tel.histogram(
            "repro_store_commit_seconds",
            "Wall-clock per shard-write transaction (incl. fsync)",
        )
        self._m_busy_retries = tel.counter(
            "repro_store_busy_retries_total",
            "Commits re-issued after SQLITE_BUSY/locked",
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        if readonly:
            # Belt and braces on top of mode=ro: even an accidental
            # write statement on this connection is refused by sqlite
            # itself, and no DDL/migration runs — a reader must never
            # mutate (or write-lock) a live campaign database.
            self._conn.execute("PRAGMA query_only=ON")
            return
        # WAL keeps committed shards durable across a crash and lets a
        # reader (e.g. `repro report`) inspect a live campaign; sqlite
        # silently keeps the "memory" journal for :memory: stores.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS rounds ("
            "  round_id INTEGER PRIMARY KEY,"
            "  timestamp INTEGER NOT NULL,"
            "  targets_probed INTEGER NOT NULL,"
            "  responsive_count INTEGER NOT NULL,"
            "  degraded INTEGER NOT NULL DEFAULT 0,"
            "  error_count INTEGER NOT NULL DEFAULT 0,"
            f"  round_status TEXT NOT NULL DEFAULT '{ROUND_COMPLETE}',"
            "  shard_size INTEGER NOT NULL DEFAULT 0,"
            "  duration_seconds REAL NOT NULL DEFAULT 0"
            ")"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS round_shards ("
            "  round_id INTEGER NOT NULL,"
            "  shard_index INTEGER NOT NULL,"
            "  record_count INTEGER NOT NULL,"
            "  errors INTEGER NOT NULL DEFAULT 0,"
            "  operations INTEGER NOT NULL DEFAULT 0,"
            "  checksum TEXT NOT NULL DEFAULT '',"
            "  quarantine_count INTEGER NOT NULL DEFAULT 0,"
            "  PRIMARY KEY (round_id, shard_index)"
            ")"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS campaign_meta ("
            "  key TEXT PRIMARY KEY,"
            "  value TEXT NOT NULL"
            ")"
        )
        # Dead-letter quarantine: pages the supervision layer had to
        # neutralise (deadline kills, trapped exceptions, hostile
        # content).  Journaled with the shard that produced them so a
        # resumed round never duplicates entries.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            "  entry_id INTEGER PRIMARY KEY AUTOINCREMENT,"
            "  round_id INTEGER NOT NULL,"
            "  ip INTEGER NOT NULL,"
            "  timestamp INTEGER NOT NULL,"
            "  stage TEXT NOT NULL,"
            "  verdict TEXT NOT NULL,"
            "  error_class TEXT,"
            "  error TEXT,"
            "  payload TEXT NOT NULL DEFAULT '',"
            "  replayed INTEGER NOT NULL DEFAULT 0,"
            "  shard_index INTEGER NOT NULL DEFAULT 0"
            ")"
        )
        self._migrate_rounds_table()
        self._migrate_shard_tables()
        self._commit()

    def _migrate_rounds_table(self) -> None:
        """Upgrade databases written before the resilience/journal
        columns existed (older files lack ``degraded``, ``error_count``
        and ``round_status``)."""
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(rounds)")
        }
        for name in ("degraded", "error_count"):
            if name not in existing:
                self._conn.execute(
                    f"ALTER TABLE rounds ADD COLUMN {name} "
                    "INTEGER NOT NULL DEFAULT 0"
                )
        if "round_status" not in existing:
            self._conn.execute(
                "ALTER TABLE rounds ADD COLUMN round_status "
                f"TEXT NOT NULL DEFAULT '{ROUND_COMPLETE}'"
            )
            # Pre-journal rounds were only ever written whole, so they
            # are complete; carry the degraded flag into the status.
            self._conn.execute(
                "UPDATE rounds SET round_status = ? WHERE degraded = 1",
                (ROUND_DEGRADED,),
            )
        if "shard_size" not in existing:
            self._conn.execute(
                "ALTER TABLE rounds ADD COLUMN shard_size "
                "INTEGER NOT NULL DEFAULT 0"
            )
        if "duration_seconds" not in existing:
            self._conn.execute(
                "ALTER TABLE rounds ADD COLUMN duration_seconds "
                "REAL NOT NULL DEFAULT 0"
            )

    def _migrate_shard_tables(self) -> None:
        """Upgrade databases written before shard checksums existed.
        Legacy shards keep an empty checksum — :meth:`verify_round`
        reports them *unverifiable* rather than corrupt."""
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(round_shards)")
        }
        if "checksum" not in existing:
            self._conn.execute(
                "ALTER TABLE round_shards ADD COLUMN checksum "
                "TEXT NOT NULL DEFAULT ''"
            )
        if "quarantine_count" not in existing:
            self._conn.execute(
                "ALTER TABLE round_shards ADD COLUMN quarantine_count "
                "INTEGER NOT NULL DEFAULT 0"
            )
        quarantine_cols = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(quarantine)")
        }
        if quarantine_cols and "shard_index" not in quarantine_cols:
            self._conn.execute(
                "ALTER TABLE quarantine ADD COLUMN shard_index "
                "INTEGER NOT NULL DEFAULT 0"
            )

    @classmethod
    def open_readonly(cls, path: str, **kwargs) -> "MeasurementStore":
        """Open an existing database strictly for reading.

        The connection uses sqlite's ``mode=ro`` URI plus the
        ``query_only`` pragma, so it can never take a write lock — a
        query tool (``repro serve``/``stats``/``rounds``/``verify``)
        pointed at a live campaign database cannot stall the writer or
        mutate anything, even by accident.  No schema DDL or migration
        runs.  Raises :class:`sqlite3.OperationalError` when *path*
        does not exist (read-only mode never creates files)."""
        return cls(path, readonly=True, **kwargs)

    @contextmanager
    def read_deadline(self, deadline: float | None, *, tick: int = 64):
        """Bound every statement on this connection by a monotonic
        *deadline* (``time.monotonic()`` seconds; ``None`` disables).

        Implemented with sqlite's progress handler: once the deadline
        passes, the running statement is aborted and sqlite raises
        ``OperationalError('interrupted')`` — classify it with
        :func:`is_interrupted`.  This is how the serving layer's
        per-request deadline budget propagates *into* store reads, so a
        pathological query fails at its budget instead of piling up
        behind the connection."""
        if deadline is None:
            yield self
            return

        def _expired():
            return 1 if time.monotonic() >= deadline else 0

        self._conn.set_progress_handler(_expired, tick)
        try:
            yield self
        finally:
            self._conn.set_progress_handler(None, 0)

    def _table_has_column(self, table: str, column: str) -> bool:
        return any(
            row["name"] == column
            for row in self._conn.execute(f"PRAGMA table_info({table})")
        )

    def _commit(self) -> None:
        """Commit with a bounded jittered-backoff retry on SQLITE_BUSY.

        ``busy_timeout`` already makes sqlite wait inside one attempt;
        this loop covers writers that keep losing the race (e.g. the
        coordinator merging a partition while a reporting tool holds
        the database).  A failed commit leaves the transaction open, so
        re-issuing it is safe; anything but a busy/locked error — and
        the final exhausted attempt — propagates."""
        for attempt in range(self._busy_retries + 1):
            try:
                self._conn.commit()
                return
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == self._busy_retries:
                    raise
                self._m_busy_retries.inc()
                time.sleep(backoff_delay(
                    attempt,
                    base=self._busy_backoff_base,
                    cap=self._busy_backoff_max,
                    rng=self._busy_random,
                ))

    # ------------------------------------------------------------------
    # journaled writes

    def begin_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        *,
        shard_size: int = 0,
        fresh: bool = False,
    ) -> RoundInfo:
        """Open a round for shard-by-shard writing; returns its info.

        Re-opening a round that is already ``in_progress`` is the
        resume path: the table, its committed shards, and the
        originally-journaled *shard_size* are kept (the caller must
        shard by the returned :attr:`RoundInfo.shard_size` so indices
        line up).  ``fresh=True`` discards any previous incarnation of
        the round first (the legacy :meth:`write_round` rewrite
        semantics).  Raises :class:`ValueError` when *timestamp* is
        already used by a different round — two rounds sharing a
        timestamp would share a table name and silently clobber each
        other.
        """
        with self._lock:
            clash = self._conn.execute(
                "SELECT round_id FROM rounds "
                "WHERE timestamp = ? AND round_id != ?",
                (timestamp, round_id),
            ).fetchone()
            if clash is not None:
                raise ValueError(
                    f"timestamp {timestamp} already used by round "
                    f"{clash['round_id']}; refusing to clobber its table"
                )
            row = self._conn.execute(
                "SELECT round_status FROM rounds WHERE round_id = ?",
                (round_id,),
            ).fetchone()
            table = f"round_{timestamp:05d}"
            if row is not None:
                if fresh:
                    self._conn.execute(f"DROP TABLE IF EXISTS {table}")
                    self._conn.execute(
                        "DELETE FROM round_shards WHERE round_id = ?",
                        (round_id,),
                    )
                    self._conn.execute(
                        "DELETE FROM rounds WHERE round_id = ?", (round_id,)
                    )
                elif row["round_status"] == ROUND_IN_PROGRESS:
                    # Resume: keep shards.  Tables written before the
                    # shard_index bookkeeping column gain it here so
                    # the remaining shards insert cleanly.
                    if not self._table_has_column(table, "shard_index"):
                        self._conn.execute(
                            f"ALTER TABLE {table} ADD COLUMN shard_index "
                            "INTEGER NOT NULL DEFAULT 0"
                        )
                        self._commit()
                    return self._any_round(round_id)
                else:
                    raise ValueError(f"round {round_id} is already finalized")
            columns_sql = ", ".join(f"{name} {sql}" for name, sql in _COLUMNS)
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {table} "
                f"({columns_sql}, shard_index INTEGER NOT NULL DEFAULT 0)"
            )
            self._conn.execute(
                "INSERT INTO rounds VALUES (?, ?, ?, 0, 0, 0, ?, ?, 0)",
                (round_id, timestamp, targets_probed, ROUND_IN_PROGRESS,
                 shard_size),
            )
            self._commit()
            return self._any_round(round_id)

    def write_shard(
        self,
        round_id: int,
        shard_index: int,
        records: Iterable[RoundRecord],
        *,
        errors: int = 0,
        operations: int = 0,
        quarantine: Iterable[QuarantineRecord] = (),
    ) -> bool:
        """Commit one shard of a round atomically.

        Idempotent: a shard index that already committed is skipped
        (returns False), so a crashed-and-resumed process can blindly
        replay its shard sequence without duplicating rows.  The rows,
        the shard's *quarantine* entries, and the shard journal entry
        land in one transaction — a crash mid-write rolls the whole
        shard back, and the committed-shard skip covers quarantine
        entries too (no duplicates on resume).
        """
        with self._lock:
            info = self._open_round(round_id)
            started = time.perf_counter()
            try:
                committed = self._insert_shard(
                    info, shard_index, records,
                    errors=errors, operations=operations,
                    quarantine=quarantine,
                )
                self._commit()
            except BaseException:
                self._conn.rollback()
                raise
            if committed:
                self._note_flush(1, time.perf_counter() - started)
            return committed

    def write_shards(
        self, round_id: int, shards: Sequence[ShardPayload]
    ) -> int:
        """Commit a batch of shards in **one** transaction.

        The pipeline's store-writer stage uses this to amortise commit
        (fsync) cost: begin / executemany per shard / single commit.
        Per-shard idempotence is preserved — already-committed shard
        indices inside the batch are skipped, exactly as in
        :meth:`write_shard` — and an error rolls the whole batch back,
        so a crash mid-batch loses at most the batch, never half a
        shard.  Returns the number of shards actually committed.
        """
        with self._lock:
            info = self._open_round(round_id)
            started = time.perf_counter()
            committed = 0
            try:
                for shard in shards:
                    committed += self._insert_shard(
                        info, shard.shard_index, shard.records,
                        errors=shard.errors, operations=shard.operations,
                        quarantine=shard.quarantine,
                    )
                self._commit()
            except BaseException:
                self._conn.rollback()
                raise
            if committed:
                self._note_flush(committed, time.perf_counter() - started)
            return committed

    def _insert_shard(
        self,
        info: RoundInfo,
        shard_index: int,
        records: Iterable[RoundRecord],
        *,
        errors: int,
        operations: int,
        quarantine: Iterable[QuarantineRecord],
    ) -> bool:
        """Stage one shard's inserts on the open transaction (no
        commit); returns False for an already-committed shard index."""
        already = self._conn.execute(
            "SELECT 1 FROM round_shards WHERE round_id = ? AND shard_index = ?",
            (info.round_id, shard_index),
        ).fetchone()
        if already is not None:
            return False
        row_dicts = [record.to_row() for record in records]
        checksum = shard_checksum(row_dicts)
        entries = list(quarantine)
        placeholders = ", ".join("?" for _ in _COLUMN_NAMES)
        # Each row carries the shard index it was committed under so
        # verification/merge can attribute rows to journal entries in
        # any landing order (resume, partition merge, salvage).
        self._conn.executemany(
            f"INSERT INTO {info.table_name} "
            f"({', '.join(_COLUMN_NAMES)}, shard_index) "
            f"VALUES ({placeholders}, ?)",
            (
                tuple(row[name] for name in _COLUMN_NAMES) + (shard_index,)
                for row in row_dicts
            ),
        )
        self._conn.executemany(
            "INSERT INTO quarantine "
            "(round_id, ip, timestamp, stage, verdict, error_class,"
            " error, payload, replayed, shard_index) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (entry.round_id, entry.ip, entry.timestamp, entry.stage,
                 entry.verdict, entry.error_class, entry.error,
                 entry.payload, int(entry.replayed), shard_index)
                for entry in entries
            ),
        )
        self._conn.execute(
            "INSERT INTO round_shards VALUES (?, ?, ?, ?, ?, ?, ?)",
            (info.round_id, shard_index, len(row_dicts), errors, operations,
             checksum, len(entries)),
        )
        return True

    def _note_flush(self, batch_shards: int, seconds: float) -> None:
        stats = self._writer_stats
        stats["shard_commits"] += batch_shards
        stats["flush_count"] += 1
        stats["flush_seconds"] += seconds
        stats["max_flush_seconds"] = max(stats["max_flush_seconds"], seconds)
        stats["max_batch_shards"] = max(stats["max_batch_shards"],
                                        batch_shards)
        self._m_commits.inc()
        self._m_commit_seconds.observe(seconds)

    def writer_stats_snapshot(self) -> dict[str, float]:
        """Lifetime writer-flush telemetry (commit counts/latency) —
        the platform diffs two snapshots to attribute flushes to one
        round's :class:`~repro.core.records.PipelineStats`."""
        with self._lock:
            return dict(self._writer_stats)

    def finalize_round(
        self,
        round_id: int,
        *,
        degraded: bool = False,
        error_count: int | None = None,
        duration_seconds: float = 0.0,
    ) -> RoundInfo:
        """Seal an open round: count its rows, build the IP index, and
        flip the status to ``complete``/``degraded``.  *error_count*
        defaults to the sum journaled by :meth:`write_shard`;
        *duration_seconds* records the producing run's wall clock."""
        with self._lock:
            info = self._open_round(round_id)
            if error_count is None:
                error_count = self.shard_stats(round_id)[0]
            responsive = self._conn.execute(
                f"SELECT COUNT(*) FROM {info.table_name}"
            ).fetchone()[0]
            table = info.table_name
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_{table}_ip ON {table} (ip)"
            )
            status = ROUND_DEGRADED if degraded else ROUND_COMPLETE
            self._conn.execute(
                "UPDATE rounds SET responsive_count = ?, degraded = ?,"
                " error_count = ?, round_status = ?, duration_seconds = ?"
                " WHERE round_id = ?",
                (responsive, int(degraded), error_count, status,
                 float(duration_seconds), round_id),
            )
            self._commit()
            return RoundInfo(
                round_id, info.timestamp, info.targets_probed, responsive,
                degraded=degraded, error_count=error_count, status=status,
                shard_size=info.shard_size,
                duration_seconds=float(duration_seconds),
            )

    def write_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        records: Iterable[RoundRecord],
        *,
        degraded: bool = False,
        error_count: int = 0,
    ) -> RoundInfo:
        """Persist one complete round in a single shard (legacy API).

        Rewriting the *same* round_id replaces the round; reusing a
        timestamp under a *different* round_id raises ValueError (the
        two rounds would silently drop each other's table otherwise).
        """
        self.begin_round(round_id, timestamp, targets_probed, fresh=True)
        self.write_shard(round_id, 0, records, errors=error_count)
        return self.finalize_round(
            round_id, degraded=degraded, error_count=error_count
        )

    # ------------------------------------------------------------------
    # recovery

    def open_rounds(self) -> list[RoundInfo]:
        """Rounds a crash (or abort) left ``in_progress``, in
        chronological order — the resume entry point."""
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds "
            "WHERE round_status = ? ORDER BY timestamp, round_id",
            (ROUND_IN_PROGRESS,),
        )
        return [self._round_info(row) for row in cursor.fetchall()]

    def completed_shards(self, round_id: int) -> set[int]:
        """Shard indices that already committed for *round_id*."""
        cursor = self._conn.execute(
            "SELECT shard_index FROM round_shards WHERE round_id = ?",
            (round_id,),
        )
        return {row[0] for row in cursor.fetchall()}

    def shard_stats(self, round_id: int) -> tuple[int, int]:
        """Summed (errors, operations) journaled across the round's
        committed shards — survives a crash, unlike process counters."""
        row = self._conn.execute(
            "SELECT COALESCE(SUM(errors), 0), COALESCE(SUM(operations), 0) "
            "FROM round_shards WHERE round_id = ?",
            (round_id,),
        ).fetchone()
        return int(row[0]), int(row[1])

    # ------------------------------------------------------------------
    # shard journal & integrity

    def shard_journal(self, round_id: int) -> list[ShardJournalEntry]:
        """The round's committed-shard journal, ascending shard index."""
        cursor = self._conn.execute(
            "SELECT round_id, shard_index, record_count, errors,"
            " operations, checksum, quarantine_count"
            " FROM round_shards WHERE round_id = ? ORDER BY shard_index",
            (round_id,),
        )
        return [
            ShardJournalEntry(
                round_id=row["round_id"], shard_index=row["shard_index"],
                record_count=row["record_count"], errors=row["errors"],
                operations=row["operations"], checksum=row["checksum"],
                quarantine_count=row["quarantine_count"],
            )
            for row in cursor.fetchall()
        ]

    def shard_records(
        self, round_id: int, shard_index: int
    ) -> list[RoundRecord]:
        """One committed shard's rows in insertion order (works on
        rounds of any status — the merge path reads partition journals
        that are still ``in_progress``)."""
        info = self._any_round(round_id)
        cursor = self._conn.execute(
            f"SELECT * FROM {info.table_name} WHERE shard_index = ? "
            "ORDER BY rowid",
            (shard_index,),
        )
        return [RoundRecord.from_row(row) for row in cursor.fetchall()]

    def shard_quarantine(
        self, round_id: int, shard_index: int
    ) -> list[QuarantineRecord]:
        """Quarantine entries committed with one shard, oldest first."""
        cursor = self._conn.execute(
            "SELECT * FROM quarantine "
            "WHERE round_id = ? AND shard_index = ? ORDER BY entry_id",
            (round_id, shard_index),
        )
        return [QuarantineRecord.from_row(row) for row in cursor.fetchall()]

    def verify_round(self, round_id: int) -> RoundVerification:
        """Walk one round's shard journal and recompute every shard's
        checksum: reports missing shards (journal gaps in a finalized
        round), corrupt shards (digest or row-count mismatch), legacy
        shards with no digest, and orphaned rows/quarantine entries not
        attributed to any journaled shard."""
        with self._lock:
            info = self._any_round(round_id)
            entries = self.shard_journal(round_id)
            report = RoundVerification(
                round_id=round_id, timestamp=info.timestamp,
                status=info.status, shards=len(entries),
            )
            present = {entry.shard_index for entry in entries}
            if info.status != ROUND_IN_PROGRESS:
                if info.shard_size > 0:
                    expected = max(
                        1, math.ceil(info.targets_probed / info.shard_size)
                    )
                    report.missing = sorted(set(range(expected)) - present)
                elif entries and 0 not in present:
                    report.missing = [0]
            if not self._table_has_column(info.table_name, "shard_index"):
                # Pre-checksum table: rows cannot be attributed.
                report.unverifiable = sorted(present)
                return report
            attributed_rows = 0
            attributed_quarantine = 0
            for entry in entries:
                rows = [
                    record.to_row()
                    for record in self.shard_records(
                        round_id, entry.shard_index
                    )
                ]
                attributed_rows += len(rows)
                attributed_quarantine += self._conn.execute(
                    "SELECT COUNT(*) FROM quarantine "
                    "WHERE round_id = ? AND shard_index = ?",
                    (round_id, entry.shard_index),
                ).fetchone()[0]
                if not entry.checksum:
                    report.unverifiable.append(entry.shard_index)
                    continue
                if (
                    len(rows) != entry.record_count
                    or shard_checksum(rows) != entry.checksum
                ):
                    report.corrupt.append(entry.shard_index)
                else:
                    report.verified += 1
            total_rows = self._conn.execute(
                f"SELECT COUNT(*) FROM {info.table_name}"
            ).fetchone()[0]
            total_quarantine = self.quarantine_count(round_id)
            report.orphan_rows = total_rows - attributed_rows
            report.orphan_quarantine = (
                total_quarantine - attributed_quarantine
            )
            return report

    def delete_partial(self, round_id: int) -> None:
        """Discard an ``in_progress`` round entirely (table, journal,
        metadata).  Finalized rounds are protected: ValueError."""
        info = self._any_round(round_id)
        if info.status != ROUND_IN_PROGRESS:
            raise ValueError(
                f"round {round_id} is {info.status}, not a partial round"
            )
        self._conn.execute(f"DROP TABLE IF EXISTS {info.table_name}")
        self._conn.execute(
            "DELETE FROM round_shards WHERE round_id = ?", (round_id,)
        )
        self._conn.execute(
            "DELETE FROM rounds WHERE round_id = ?", (round_id,)
        )
        self._commit()

    def max_round_id(self) -> int:
        """Highest round_id ever assigned (0 for an empty store),
        including open rounds — the durable round-ID watermark."""
        row = self._conn.execute(
            "SELECT COALESCE(MAX(round_id), 0) FROM rounds"
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # quarantine (dead-letter)

    def add_quarantine(self, entry: QuarantineRecord) -> int:
        """Insert one quarantine entry outside the shard protocol
        (used by tools and tests); returns its entry_id."""
        cursor = self._conn.execute(
            "INSERT INTO quarantine "
            "(round_id, ip, timestamp, stage, verdict, error_class,"
            " error, payload, replayed) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (entry.round_id, entry.ip, entry.timestamp, entry.stage,
             entry.verdict, entry.error_class, entry.error,
             entry.payload, int(entry.replayed)),
        )
        self._commit()
        return int(cursor.lastrowid)

    def quarantine_rows(
        self,
        round_id: int | None = None,
        *,
        include_replayed: bool = True,
    ) -> list[QuarantineRecord]:
        """Quarantine entries, oldest first; optionally one round's,
        optionally only the ones not yet replayed."""
        sql = "SELECT * FROM quarantine"
        clauses, params = [], []
        if round_id is not None:
            clauses.append("round_id = ?")
            params.append(round_id)
        if not include_replayed:
            clauses.append("replayed = 0")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY entry_id"
        cursor = self._conn.execute(sql, params)
        return [QuarantineRecord.from_row(row) for row in cursor.fetchall()]

    def quarantine_count(self, round_id: int | None = None) -> int:
        if round_id is None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM quarantine WHERE round_id = ?",
                (round_id,),
            ).fetchone()
        return int(row[0])

    def mark_quarantine_replayed(self, entry_id: int) -> None:
        self._conn.execute(
            "UPDATE quarantine SET replayed = 1 WHERE entry_id = ?",
            (entry_id,),
        )
        self._commit()

    def update_features(
        self, round_id: int, ip: int, features: PageFeatures
    ) -> bool:
        """Overwrite one row's feature columns — the ``repro quarantine
        replay`` path, where a fixed extractor re-processes a stored
        body.  Returns False when the IP has no row in the round.  The
        owning shard's journaled checksum is recomputed so a legitimate
        replay is distinguishable from silent corruption."""
        with self._lock:
            info = self._any_round(round_id)
            cursor = self._conn.execute(
                f"UPDATE {info.table_name} SET"
                " powered_by = ?, description = ?, header_string = ?,"
                " html_length = ?, title = ?, template = ?, server = ?,"
                " keywords = ?, analytics_id = ?, simhash = ?"
                " WHERE ip = ?",
                (features.powered_by, features.description,
                 features.header_string, features.html_length, features.title,
                 features.template, features.server, features.keywords,
                 features.analytics_id, f"{features.simhash:024x}", ip),
            )
            if (
                cursor.rowcount > 0
                and self._table_has_column(info.table_name, "shard_index")
            ):
                owner = self._conn.execute(
                    f"SELECT shard_index FROM {info.table_name} WHERE ip = ?",
                    (ip,),
                ).fetchone()
                if owner is not None:
                    rows = [
                        record.to_row()
                        for record in self.shard_records(round_id, owner[0])
                    ]
                    self._conn.execute(
                        "UPDATE round_shards SET checksum = ? "
                        "WHERE round_id = ? AND shard_index = ? "
                        "AND checksum != ''",
                        (shard_checksum(rows), round_id, owner[0]),
                    )
            self._commit()
            return cursor.rowcount > 0

    # ------------------------------------------------------------------
    # campaign metadata

    def set_meta(self, key: str, value: str) -> None:
        """Persist one campaign-level key/value pair (upsert)."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO campaign_meta VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )
            self._commit()

    def get_meta(self, key: str, default: str | None = None) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM campaign_meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row["value"]

    def meta(self) -> dict[str, str]:
        cursor = self._conn.execute("SELECT key, value FROM campaign_meta")
        return {row["key"]: row["value"] for row in cursor.fetchall()}

    # ------------------------------------------------------------------
    # reads

    _ROUND_COLUMNS = (
        "round_id, timestamp, targets_probed, responsive_count, "
        "degraded, error_count, round_status, shard_size, duration_seconds"
    )

    @staticmethod
    def _round_info(row) -> RoundInfo:
        return RoundInfo(
            row["round_id"], row["timestamp"], row["targets_probed"],
            row["responsive_count"],
            degraded=bool(row["degraded"]), error_count=row["error_count"],
            status=row["round_status"], shard_size=row["shard_size"],
            duration_seconds=row["duration_seconds"],
        )

    def rounds(self) -> list[RoundInfo]:
        """All *finalized* rounds in chronological order (round_id
        breaks timestamp ties so the ordering is stable); partial
        rounds are visible through :meth:`open_rounds` instead, so
        analyses never see a half-written round."""
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds "
            "WHERE round_status != ? ORDER BY timestamp, round_id",
            (ROUND_IN_PROGRESS,),
        )
        return [self._round_info(row) for row in cursor.fetchall()]

    def round_info(self, round_id: int) -> RoundInfo:
        info = self._any_round(round_id)
        if info.status == ROUND_IN_PROGRESS:
            raise KeyError(f"round {round_id} is still in progress")
        return info

    def _any_round(self, round_id: int) -> RoundInfo:
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds WHERE round_id = ?",
            (round_id,),
        )
        row = cursor.fetchone()
        if row is None:
            raise KeyError(f"no such round: {round_id}")
        return self._round_info(row)

    def _open_round(self, round_id: int) -> RoundInfo:
        info = self._any_round(round_id)
        if info.status != ROUND_IN_PROGRESS:
            raise ValueError(f"round {round_id} is not open for writing")
        return info

    def round_stats(self, round_id: int) -> dict[str, int]:
        """Aggregate row counts for one round (any status): responsive
        rows, *available* rows (HTTP response received), and rows where
        a fetch was attempted."""
        info = self._any_round(round_id)
        row = self._conn.execute(
            "SELECT COUNT(*),"
            " COALESCE(SUM(CASE WHEN fetch_status = 'ok'"
            "   AND status_code IS NOT NULL THEN 1 ELSE 0 END), 0),"
            " COALESCE(SUM(CASE WHEN fetch_status != 'not-attempted'"
            "   THEN 1 ELSE 0 END), 0) "
            f"FROM {info.table_name}"
        ).fetchone()
        return {
            "responsive": int(row[0]),
            "available": int(row[1]),
            "fetched": int(row[2]),
        }

    #: Feature columns :meth:`aggregate_column` may group by — a strict
    #: allowlist since the column name is interpolated into SQL.
    AGGREGATE_COLUMNS = frozenset(
        {"template", "server", "powered_by", "content_type",
         "status_code", "title"}
    )

    def aggregate_column(
        self, round_id: int, column: str, *, limit: int = 20
    ) -> list[tuple[str, int]]:
        """Top values of one feature *column* in one round with their
        row counts, descending — the cheap per-round cluster-aggregate
        read behind ``repro serve`` (full §5 clustering is a batch job,
        not a request-path one).  *column* must be in
        :data:`AGGREGATE_COLUMNS`."""
        if column not in self.AGGREGATE_COLUMNS:
            raise ValueError(f"cannot aggregate by column {column!r}")
        if limit <= 0:
            raise ValueError("limit must be positive")
        info = self.round_info(round_id)
        cursor = self._conn.execute(
            f"SELECT {column}, COUNT(*) AS n FROM {info.table_name} "
            f"WHERE {column} IS NOT NULL "
            f"GROUP BY {column} ORDER BY n DESC, {column} LIMIT ?",
            (limit,),
        )
        return [(str(row[0]), int(row[1])) for row in cursor.fetchall()]

    def records(self, round_id: int) -> Iterator[RoundRecord]:
        """All records of one round."""
        info = self.round_info(round_id)
        cursor = self._conn.execute(f"SELECT * FROM {info.table_name}")
        for row in cursor:
            yield RoundRecord.from_row(row)

    def record(self, round_id: int, ip: int) -> RoundRecord | None:
        """One IP's record in one round, or None if unresponsive then."""
        info = self.round_info(round_id)
        cursor = self._conn.execute(
            f"SELECT * FROM {info.table_name} WHERE ip = ?", (ip,)
        )
        row = cursor.fetchone()
        return RoundRecord.from_row(row) if row else None

    def history(self, ip: int) -> list[RoundRecord]:
        """The WhoWas lookup: the full status/content history of an IP,
        in chronological order (absent rounds = unresponsive)."""
        history: list[RoundRecord] = []
        for info in self.rounds():
            cursor = self._conn.execute(
                f"SELECT * FROM {info.table_name} WHERE ip = ?", (ip,)
            )
            row = cursor.fetchone()
            if row is not None:
                history.append(RoundRecord.from_row(row))
        return history

    def responsive_ips(self, round_id: int) -> set[int]:
        info = self.round_info(round_id)
        cursor = self._conn.execute(f"SELECT ip FROM {info.table_name}")
        return {row[0] for row in cursor.fetchall()}

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "MeasurementStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
