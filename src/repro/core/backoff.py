"""Shared jittered exponential backoff.

Three subsystems grew their own copy of the same pattern — the fetcher's
retry delay, the store's SQLITE_BUSY commit retry, and the worker
supervisor's partition-reassignment hold — and the serving layer's
``Retry-After`` hint makes a fourth.  This module is the single
implementation: capped exponential growth with multiplicative jitter,
where the jitter source is either a **seeded key** (deterministic per
logical retry, so campaign output never depends on wall-clock luck) or
a caller-owned :class:`random.Random` (for timing-only jitter like the
store's busy retry, which never touches data).

The jitter band is expressed as ``(jitter_min, jitter_max)`` multipliers
of the capped exponential delay; the historical call sites pin their
exact bands so extraction changed no observable delay:

* fetcher retry: ``(0.5, 1.0)``, key ``fetch-retry:{ip}:{attempt}``
* worker reassignment: ``(0.5, 1.5)``, key
  ``backoff:{round_id}:{partition}:{attempt}``
* store busy retry: ``(0.5, 1.5)``, caller-owned unseeded RNG
"""

from __future__ import annotations

import math
import random

__all__ = ["backoff_delay", "retry_after_seconds"]


def backoff_delay(
    attempt: int,
    *,
    base: float,
    cap: float,
    key: str | None = None,
    rng: random.Random | None = None,
    jitter_min: float = 0.5,
    jitter_max: float = 1.5,
) -> float:
    """Delay in seconds before retry *attempt* (0-based).

    The undithered delay is ``min(base * 2**attempt, cap)``; the
    returned value is that delay scaled by a uniform draw from
    ``[jitter_min, jitter_max)``.  Exactly one jitter source applies:
    *key* seeds a throwaway :class:`random.Random` (same key, same
    delay — deterministic across processes and runs), *rng* draws from
    a caller-owned generator, and with neither the module-level RNG is
    used (timing jitter only — never for anything data-bearing).
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    if base < 0 or cap < 0:
        raise ValueError("base and cap must be non-negative")
    if jitter_max < jitter_min:
        raise ValueError("jitter_max must be >= jitter_min")
    delay = min(base * (2 ** attempt), cap)
    if key is not None:
        draw = random.Random(key).random()
    elif rng is not None:
        draw = rng.random()
    else:
        draw = random.random()
    return delay * (jitter_min + (jitter_max - jitter_min) * draw)


def retry_after_seconds(
    attempt: int, *, base: float, cap: float, key: str
) -> int:
    """Whole-second ``Retry-After`` hint for load shedding: the seeded
    :func:`backoff_delay` for *attempt*, rounded up to at least 1 s so
    the header is always a positive integer.  Consecutive sheds pass a
    growing *attempt*, spreading retries of a rejected thundering herd
    instead of re-synchronising it."""
    delay = backoff_delay(attempt, base=base, cap=cap, key=key)
    return max(1, math.ceil(delay))
