"""Multi-process round execution: partitioning, supervision, merge.

A round's shard sequence is split into contiguous **partitions**, each
assigned to a spawned worker process.  A worker is the ordinary
platform in miniature: it rebuilds its transport from the picklable
``transport_factory``, opens its own **partition journal** (a SQLite
sidecar of the campaign database), and runs the existing
:class:`~repro.core.pipeline.RoundPipeline` over its shards — every
resilience property of the single-process engine (journaled shards,
guard deadlines, quarantine) holds inside each worker unchanged.

The coordinator's :class:`WorkerSupervisor` owns the failure domain
*around* the workers:

* **Heartbeats** — each worker beats on a queue from inside its event
  loop, so a wedged loop (not just a dead process) goes silent.  A
  worker whose heartbeat age exceeds ``WorkerConfig.heartbeat_timeout``
  is SIGKILLed.
* **Reassignment** — a partition whose worker died, wedged, or left an
  incomplete/corrupt journal goes back on the queue with capped
  retry + jittered backoff.  A restarted partition reopens its journal
  and skips the shards that already committed.
* **Graceful degradation** — a partition that exhausts its retries
  shrinks the pool by one slot and runs inline in the coordinator as a
  last resort; the round is forced ``degraded`` through the existing
  error-budget path.
* **Checksum-verified merge** — completed journals are verified
  (every assigned shard present, every digest matching) and merged
  into the canonical store through the same idempotent
  :meth:`~repro.core.store.StoreBackend.write_shard` protocol, in
  ascending shard order (so the merge also folds the canonical
  store's materialized read models, whichever engine backs it;
  per-partition *journals* are always sqlite files).  Stale journals left by a crashed coordinator
  are salvaged the same way before partitioning, so coordinator death
  is exactly as recoverable as worker death.

Because the simulated cloud is a pure function of ``(seed, day)`` and
all per-request mutable state is scoped per-IP, a round run with
``--workers N`` is byte-identical to the serial path on the same seed.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import queue as queue_module
import signal
import sqlite3
import sys
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

from .backoff import backoff_delay
from .config import PlatformConfig
from .faults import ProcessChaosPlan, ProcFaultKind
from .pipeline import ShardWork
from .records import PipelineStats
from .store import MeasurementStore, StoreBackend, shard_checksum
from . import telemetry as _telemetry

__all__ = [
    "PartitionSpec",
    "WorkerTask",
    "WorkerRoundReport",
    "WorkerSupervisor",
    "partition_shards",
    "partition_worker_main",
    "run_partition",
]


@dataclass(frozen=True)
class PartitionSpec:
    """One contiguous block of a round's shards, assigned as a unit."""

    index: int
    #: Global shard indices (ascending, contiguous).
    shard_indices: tuple[int, ...]
    #: Target IPs per shard, parallel to :attr:`shard_indices`.
    targets: tuple[tuple[int, ...], ...]

    @property
    def shard_count(self) -> int:
        return len(self.shard_indices)


def partition_shards(
    shards: Sequence[tuple[int, tuple[int, ...]]],
    partitions: int,
) -> list[PartitionSpec]:
    """Split ``(shard_index, targets)`` pairs into at most *partitions*
    contiguous, near-equal blocks (the first ``len % partitions`` blocks
    take the extra shard).  Contiguity keeps each worker's shard walk in
    the same order the serial engine would use."""
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    count = min(partitions, len(shards))
    specs: list[PartitionSpec] = []
    base, extra = divmod(len(shards), count) if count else (0, 0)
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        block = shards[start:start + size]
        start += size
        specs.append(PartitionSpec(
            index=index,
            shard_indices=tuple(i for i, _ in block),
            targets=tuple(tuple(t) for _, t in block),
        ))
    return specs


@dataclass(frozen=True)
class WorkerTask:
    """Everything one partition execution needs, pickled to the spawned
    worker (spawn start method: nothing is inherited, so determinism
    cannot leak in through interpreter state)."""

    partition: PartitionSpec
    attempt: int
    round_id: int
    timestamp: int
    journal_path: str
    config: PlatformConfig
    #: Picklable callable ``factory(timestamp) -> Transport`` that
    #: rebuilds the worker's network (e.g. the simulated cloud advanced
    #: to the round's day) from parameters alone.
    transport_factory: Callable
    heartbeat_interval: float = 0.2
    #: Worker-side process chaos (KILL_MID_SHARD / FREEZE); None
    #: outside the chaos tier and always None for inline fallback runs.
    chaos: ProcessChaosPlan | None = None


def _inprocess_config(config: PlatformConfig) -> PlatformConfig:
    """The worker's platform config: same measurement semantics, worker
    pool disabled (a worker never recursively spawns workers)."""
    if config.workers.count <= 1:
        return config
    return replace(config, workers=replace(config.workers, count=0))


async def _run_partition_async(task: WorkerTask, emit) -> PipelineStats:
    """Run one partition's shards through a fresh platform against the
    partition journal, heartbeating from inside the event loop."""
    from .platform import WhoWas

    # Light telemetry up before the store caches its metric handles
    # (spawned workers start from a fresh interpreter).
    _telemetry.activate_from(task.config.telemetry)
    transport = task.transport_factory(task.timestamp)
    store = MeasurementStore(task.journal_path)
    try:
        platform = WhoWas(
            transport, store, config=_inprocess_config(task.config)
        )
        try:
            total = sum(len(t) for t in task.partition.targets)
            store.begin_round(
                task.round_id, task.timestamp, total,
                shard_size=task.config.shard_size,
            )
            done = store.completed_shards(task.round_id)
            rule = None
            if task.chaos is not None:
                rule = task.chaos.fault_for(
                    "worker", task.round_id, task.partition.index,
                    task.attempt,
                )

            def work_items():
                trigger = None
                if rule is not None:
                    trigger = min(
                        rule.shard_ordinal,
                        max(task.partition.shard_count - 1, 0),
                    )
                for ordinal, (index, targets) in enumerate(zip(
                    task.partition.shard_indices, task.partition.targets
                )):
                    if trigger is not None and ordinal == trigger:
                        if rule.kind is ProcFaultKind.KILL_MID_SHARD:
                            # Die with shards in flight: everything
                            # committed so far survives in the journal.
                            os.kill(os.getpid(), signal.SIGKILL)
                        elif rule.kind is ProcFaultKind.FREEZE:
                            # Block the event loop: heartbeats stop and
                            # the supervisor must SIGKILL us.
                            time.sleep(rule.freeze_seconds)
                    if index in done:
                        continue
                    yield ShardWork(index=index, targets=targets)

            async def beat():
                while True:
                    emit((
                        "heartbeat", task.partition.index, task.attempt,
                        len(store.completed_shards(task.round_id)),
                    ))
                    await asyncio.sleep(task.heartbeat_interval)

            beat_task = asyncio.create_task(beat())
            try:
                stats = await platform.run_partition_async(
                    work_items(), round_id=task.round_id,
                    timestamp=task.timestamp,
                    worker=task.partition.index,
                )
            finally:
                beat_task.cancel()
            return stats
        finally:
            platform.close()
    finally:
        # Close cleanly so the journal's WAL checkpoints into the main
        # file before the coordinator opens it.
        store.close()


def run_partition(task: WorkerTask, emit=lambda message: None) -> PipelineStats:
    """Execute one partition to completion (sync).  Shared by the
    spawned worker and the coordinator's inline fallback."""
    return asyncio.run(_run_partition_async(task, emit))


def partition_worker_main(task: WorkerTask, channel) -> None:
    """Spawn entry point for one partition execution."""
    try:
        stats = run_partition(task, channel.put)
    except BaseException as exc:  # noqa: BLE001 - report, then die nonzero
        channel.put((
            "failed", task.partition.index, task.attempt,
            f"{type(exc).__name__}: {exc}",
        ))
        channel.close()
        channel.join_thread()
        sys.exit(1)
    channel.put((
        "done", task.partition.index, task.attempt, stats.to_dict(),
    ))
    channel.close()
    channel.join_thread()


class _JournalRejected(Exception):
    """A partition journal failed verification (incomplete, torn, or
    checksum-mismatched) and must not be merged."""


@dataclass
class WorkerRoundReport:
    """What the supervisor hands back to the platform."""

    stats: PipelineStats
    #: True when any partition exhausted its retries (inline fallback
    #: ran) — forces the round degraded.
    forced_degraded: bool = False
    #: True when the abort event fired; committed shards are merged and
    #: the round stays ``in_progress``.
    aborted: bool = False
    merged_shards: int = 0
    merged_records: int = 0


@dataclass
class _Running:
    process: object
    spec: PartitionSpec
    attempt: int
    journal_path: str
    started: float
    last_beat: float
    shards_done: int = 0
    done_stats: dict | None = None
    failure: str | None = None


class WorkerSupervisor:
    """Partition scheduler + health monitor + journal merger for one
    round (see the module docstring for the full state machine)."""

    def __init__(
        self,
        store: StoreBackend,
        config: PlatformConfig,
        transport_factory: Callable,
        *,
        chaos: ProcessChaosPlan | None = None,
    ):
        self.store = store
        self.config = config
        self.workers = config.workers
        self.transport_factory = transport_factory
        self.chaos = chaos
        self._ctx = multiprocessing.get_context(self.workers.start_method)
        tel = _telemetry.get()
        self._tel = tel
        self._m_events = tel.counter(
            "repro_worker_events_total",
            "Worker supervisor lifecycle events "
            "(spawn/heartbeat/kill/reassign/fallback/merge)",
            labels=("event",),
        )
        self._m_running = tel.gauge(
            "repro_workers_running", "Worker processes currently alive"
        )
        self._m_heartbeat_age = tel.gauge(
            "repro_worker_heartbeat_age_seconds",
            "Oldest heartbeat age across live workers",
        )
        # Same families the in-process pipeline feeds: worker processes
        # count stage progress in their own registries, so the
        # supervisor folds each merged partition's totals back in here
        # to keep the coordinator's /metrics endpoint meaningful.
        self._m_stage_shards = tel.counter(
            "repro_stage_shards_total", "Shards completed per stage",
            labels=("stage",),
        )
        self._m_stage_items = tel.counter(
            "repro_stage_items_total", "Items processed per stage",
            labels=("stage",),
        )
        self._m_records = tel.counter(
            "repro_records_written_total",
            "Round records written to the store",
        )

    # ------------------------------------------------------------------
    # journal plumbing

    def _journal_dir(self) -> Path:
        if self.store.path != ":memory:":
            directory = Path(f"{self.store.path}.partitions")
        else:
            directory = Path(tempfile.mkdtemp(prefix="repro-partitions-"))
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    @staticmethod
    def _journal_path(directory: Path, round_id: int, partition: int) -> str:
        return str(directory / f"r{round_id:05d}_p{partition:03d}.sqlite")

    @staticmethod
    def _remove_journal(path: str) -> None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(path + suffix)
            except FileNotFoundError:
                pass

    @staticmethod
    def _prune_journal_dir(directory: Path) -> None:
        """Drop the sidecar directory once nothing (journals, rejected
        post-mortems) lives in it any more."""
        try:
            directory.rmdir()
        except OSError:
            pass        # non-empty (quarantined journals) or already gone

    @staticmethod
    def _quarantine_journal(path: str, attempt: int) -> None:
        """Move a rejected journal aside (post-mortem) so the retry
        starts from a clean file."""
        try:
            os.replace(path, f"{path}.rejected-{attempt}")
        except FileNotFoundError:
            pass
        for suffix in ("-wal", "-shm"):
            try:
                os.unlink(path + suffix)
            except FileNotFoundError:
                pass

    def _merge_journal(
        self,
        path: str,
        round_id: int,
        report: WorkerRoundReport,
        *,
        expected: tuple[int, ...] | None = None,
    ) -> None:
        """Verify and merge one partition journal into the canonical
        store, ascending shard order.  With *expected* set, every one of
        those shard indices must be present and every checksum must
        match, or :class:`_JournalRejected` is raised and nothing more
        is merged (shards merged before the bad one are idempotently
        harmless).  Raises on unreadable/torn files too."""
        try:
            with MeasurementStore(path) as journal:
                entries = journal.shard_journal(round_id)
                present = {entry.shard_index for entry in entries}
                if expected is not None and not set(expected) <= present:
                    raise _JournalRejected(
                        f"journal {path} is missing shards "
                        f"{sorted(set(expected) - present)}"
                    )
                for entry in entries:
                    records = journal.shard_records(
                        round_id, entry.shard_index
                    )
                    rows = [record.to_row() for record in records]
                    if (
                        len(rows) != entry.record_count
                        or shard_checksum(rows) != entry.checksum
                    ):
                        raise _JournalRejected(
                            f"journal {path} shard {entry.shard_index} "
                            "failed checksum verification"
                        )
                    committed = self.store.write_shard(
                        round_id, entry.shard_index, records,
                        errors=entry.errors, operations=entry.operations,
                        quarantine=journal.shard_quarantine(
                            round_id, entry.shard_index
                        ),
                    )
                    if committed:
                        report.merged_shards += 1
                        report.merged_records += len(records)
        except (sqlite3.Error, KeyError, ValueError) as exc:
            # Torn file, missing round row, or a round table sqlite can
            # no longer read — all equivalent to a lost partition.
            raise _JournalRejected(f"journal {path} unreadable: {exc}")
        report.stats.partitions_merged += 1
        self._m_events.labels(event="merge").inc()

    def _salvage_journals(
        self, directory: Path, round_id: int, report: WorkerRoundReport
    ) -> None:
        """Merge whatever shards stale journals (left by a crashed
        coordinator) committed, then clear them out; unreadable ones
        are set aside.  Runs before partitioning, so salvaged shards
        are never re-scanned."""
        for path in sorted(directory.glob(f"r{round_id:05d}_p*.sqlite")):
            try:
                self._merge_journal(str(path), round_id, report)
            except _JournalRejected:
                self._quarantine_journal(str(path), attempt=0)
            else:
                self._remove_journal(str(path))

    # ------------------------------------------------------------------
    # supervision

    def _spawn(
        self,
        spec: PartitionSpec,
        attempt: int,
        round_id: int,
        timestamp: int,
        journal_path: str,
        channel,
    ) -> _Running:
        task = WorkerTask(
            partition=spec, attempt=attempt, round_id=round_id,
            timestamp=timestamp, journal_path=journal_path,
            config=self.config, transport_factory=self.transport_factory,
            heartbeat_interval=self.workers.heartbeat_interval,
            chaos=self.chaos,
        )
        process = self._ctx.Process(
            target=partition_worker_main, args=(task, channel), daemon=True,
        )
        process.start()
        self._m_events.labels(event="spawn").inc()
        now = time.monotonic()
        return _Running(
            process=process, spec=spec, attempt=attempt,
            journal_path=journal_path, started=now, last_beat=now,
        )

    @staticmethod
    def _backoff_delay(
        workers, round_id: int, partition: int, attempt: int
    ) -> float:
        """Capped exponential backoff with deterministic jitter (the
        jitter only shapes timing, never data)."""
        return backoff_delay(
            attempt,
            base=workers.retry_backoff_base,
            cap=workers.retry_backoff_max,
            key=f"backoff:{round_id}:{partition}:{attempt}",
        )

    def _apply_journal_chaos(
        self, path: str, round_id: int, partition: int, attempt: int
    ) -> None:
        """Coordinator-side chaos: tear a completed journal before its
        verification, the way a host crash or disk fault would."""
        if self.chaos is None:
            return
        rule = self.chaos.fault_for("journal", round_id, partition, attempt)
        if rule is None or not os.path.exists(path):
            return
        size = os.path.getsize(path)
        if rule.kind is ProcFaultKind.TRUNCATE_JOURNAL:
            with open(path, "r+b") as handle:
                handle.truncate(max(size // 3, 1))
        else:  # CORRUPT_JOURNAL: scribble over the btree pages
            with open(path, "r+b") as handle:
                handle.seek(min(1024, size))
                handle.write(b"\xde\xad\xbe\xef" * max(size // 8, 256))

    def run(
        self,
        shards: Sequence[tuple[int, tuple[int, ...]]],
        *,
        round_id: int,
        timestamp: int,
        abort_event: asyncio.Event | None = None,
    ) -> WorkerRoundReport:
        """Drive one round's remaining shards through the worker pool;
        returns once every partition has merged (or the abort fired)."""
        workers = self.workers
        stats = PipelineStats(mode="multiprocess")
        report = WorkerRoundReport(stats=stats)
        directory = self._journal_dir()

        # Crash-equivalent recovery: a dead coordinator is just a set
        # of journals nobody merged.
        self._salvage_journals(directory, round_id, report)
        done = self.store.completed_shards(round_id)
        remaining = [(i, t) for i, t in shards if i not in done]
        specs = partition_shards(remaining, workers.count)
        stats.worker_count = len(specs)
        if not specs:
            return report

        channel = self._ctx.Queue()
        # (spec, attempt, not-before) — failures append with backoff.
        pending: list[tuple[PartitionSpec, int, float]] = [
            (spec, 0, 0.0) for spec in specs
        ]
        running: dict[int, _Running] = {}
        verified: list[tuple[PartitionSpec, str]] = []
        fallback: list[PartitionSpec] = []
        slots = len(specs)

        def fail_partition(run: _Running, reason: str) -> None:
            nonlocal slots
            stats.worker_restarts += 1
            next_attempt = run.attempt + 1
            if next_attempt > workers.max_partition_retries:
                # Give up on process isolation for this partition:
                # shrink the pool and queue the inline fallback.
                slots = max(1, slots - 1)
                stats.partitions_failed += 1
                report.forced_degraded = True
                fallback.append(run.spec)
                self._m_events.labels(event="fallback").inc()
            else:
                stats.partition_reassignments += 1
                self._m_events.labels(event="reassign").inc()
                delay = self._backoff_delay(
                    workers, round_id, run.spec.index, run.attempt
                )
                pending.append(
                    (run.spec, next_attempt, time.monotonic() + delay)
                )

        def reap(run: _Running) -> None:
            """Handle one exited worker: verify its journal, then merge
            or reassign."""
            pindex = run.spec.index
            exitcode = run.process.exitcode
            self._apply_journal_chaos(
                run.journal_path, round_id, pindex, run.attempt
            )
            if exitcode == 0:
                try:
                    self._merge_journal(
                        run.journal_path, round_id, report,
                        expected=run.spec.shard_indices,
                    )
                except _JournalRejected:
                    self._quarantine_journal(run.journal_path, run.attempt)
                    fail_partition(run, "journal rejected")
                else:
                    verified.append((run.spec, run.journal_path))
                    if run.done_stats:
                        self._aggregate_stats(
                            stats, run.done_stats, partition=run.spec.index
                        )
            else:
                fail_partition(run, run.failure or f"exit code {exitcode}")

        try:
            while pending or running:
                if abort_event is not None and abort_event.is_set():
                    report.aborted = True
                    break
                now = time.monotonic()
                # Spawn into free slots (skipping backoff holds).
                for item in sorted(pending, key=lambda i: i[0].index):
                    if len(running) >= slots:
                        break
                    spec, attempt, ready_at = item
                    if ready_at > now or spec.index in running:
                        continue
                    pending.remove(item)
                    running[spec.index] = self._spawn(
                        spec, attempt, round_id, timestamp,
                        self._journal_path(directory, round_id, spec.index),
                        channel,
                    )
                self._m_running.set(len(running))
                self._drain_channel(channel, running, stats, workers)
                oldest_age = 0.0
                for pindex, run in list(running.items()):
                    if run.process.exitcode is not None:
                        run.process.join()
                        # One more drain so the exiting worker's final
                        # done/failed message is in hand before reaping.
                        self._drain_channel(channel, running, stats, workers)
                        del running[pindex]
                        reap(run)
                        continue
                    age = time.monotonic() - run.last_beat
                    oldest_age = max(oldest_age, age)
                    stats.max_heartbeat_age = max(
                        stats.max_heartbeat_age, age
                    )
                    if age > workers.heartbeat_timeout:
                        # Wedged (frozen loop, livelock): SIGKILL and
                        # reassign; committed shards survive in the
                        # journal for the retry to skip.
                        run.process.kill()
                        run.process.join()
                        del running[pindex]
                        self._m_events.labels(event="kill").inc()
                        fail_partition(run, f"heartbeat {age:.1f}s stale")
                self._m_heartbeat_age.set(oldest_age)
            if report.aborted:
                for run in running.values():
                    run.process.terminate()
                for run in running.values():
                    run.process.join()
                # Merge whatever the interrupted workers committed so a
                # resume re-scans as little as possible.
                for run in running.values():
                    try:
                        self._merge_journal(
                            run.journal_path, round_id, report
                        )
                    except _JournalRejected:
                        self._quarantine_journal(
                            run.journal_path, run.attempt
                        )
                    else:
                        self._remove_journal(run.journal_path)
                running.clear()
                self._prune_journal_dir(directory)
                return report
        finally:
            channel.close()
            channel.join_thread()

        # Last-resort inline execution of permanently-failed partitions
        # (no chaos — the coordinator must not kill itself).
        for spec in sorted(fallback, key=lambda s: s.index):
            journal_path = self._journal_path(
                directory, round_id, spec.index
            )
            task = WorkerTask(
                partition=spec,
                attempt=workers.max_partition_retries + 1,
                round_id=round_id, timestamp=timestamp,
                journal_path=journal_path, config=self.config,
                transport_factory=self.transport_factory,
                heartbeat_interval=workers.heartbeat_interval,
                chaos=None,
            )
            inline_stats = run_partition(task)
            self._merge_journal(
                journal_path, round_id, report,
                expected=spec.shard_indices,
            )
            verified.append((spec, journal_path))
            self._aggregate_stats(
                stats, inline_stats.to_dict(), partition=spec.index
            )

        for _, journal_path in verified:
            self._remove_journal(journal_path)
        self._prune_journal_dir(directory)
        stats.shards_written = report.merged_shards
        stats.records_written = report.merged_records
        return report

    def _drain_channel(self, channel, running, stats, workers) -> None:
        """Pull worker messages; the blocking first get is the loop's
        poll interval.  Messages from a superseded attempt (a killed
        worker's last gasps) are dropped."""
        try:
            message = channel.get(timeout=workers.poll_interval)
        except queue_module.Empty:
            return
        while True:
            kind, pindex, attempt = message[0], message[1], message[2]
            run = running.get(pindex)
            if run is not None and run.attempt == attempt:
                if kind == "heartbeat":
                    run.last_beat = time.monotonic()
                    run.shards_done = message[3]
                    self._m_events.labels(event="heartbeat").inc()
                elif kind == "done":
                    run.done_stats = message[3]
                elif kind == "failed":
                    run.failure = message[3]
            try:
                message = channel.get_nowait()
            except queue_module.Empty:
                return

    def _aggregate_stats(
        self, stats: PipelineStats, worker_dict: dict,
        *, partition: int | None = None,
    ) -> None:
        """Fold one worker's PipelineStats into the round's multiprocess
        stats: stage telemetry sums across workers (writer counters are
        deliberately excluded — the canonical store's merge commits are
        attributed by the platform instead).  With *partition* set, the
        worker's full per-stage view (including its journal "write"
        stage) is also kept under ``stats.partitions[str(partition)]``
        so ``repro stats`` can attribute the merged sum back to
        individual workers.  A reassigned partition's last successful
        attempt wins — earlier attempts never reach this method.

        The same totals feed the coordinator's live metric families:
        worker processes count stage progress in their own registries,
        so without this fold the parent's /metrics endpoint would show
        an idle pipeline during a multiprocess campaign."""
        worker_stats = PipelineStats.from_dict(worker_dict)
        for name, stage in worker_stats.stages.items():
            if name == "write":
                self._m_records.inc(stage.items)
                continue
            total = stats.stage(name)
            total.shards += stage.shards
            total.items += stage.items
            total.busy_seconds += stage.busy_seconds
            total.queue_peak = max(total.queue_peak, stage.queue_peak)
            total.backpressure_waits += stage.backpressure_waits
            self._m_stage_shards.labels(stage=name).inc(stage.shards)
            self._m_stage_items.labels(stage=name).inc(stage.items)
        if partition is not None:
            stats.partitions[str(partition)] = worker_stats.stages
