"""``repro serve`` — the resilient asyncio HTTP query API.

A dependency-free HTTP/1.1 server on ``asyncio.start_server`` exposing
the WhoWas query interface over a measurement database:

=====================  =================================================
``GET /healthz``       liveness (cheap, never admission-controlled)
``GET /readyz``        readiness: 503 while draining / breakers all open
``GET /rounds``        round summaries (+ in-progress ids)
``GET /rounds/<id>``   one round in detail
``GET /ip/<addr>``     per-IP history (the WhoWas lookup)
``GET /clusters/<id>`` per-round feature aggregates
                       (``?column=template&limit=20``)
=====================  =================================================

Data endpoints accept ``?deadline_ms=N`` (capped at
``ServeConfig.max_deadline``); the budget covers admission waiting, the
reader-pool lease, and the sqlite read itself, so **every request
completes or sheds within its deadline** — the overload contract the
chaos harness (`tests/test_serve_chaos.py`) pins at 10× capacity.

Robustness envelope, in request order:

1. request head parsed under ``header_timeout`` and
   ``max_request_bytes`` (slow-loris bound) — violations get ``408`` /
   ``431`` and the connection closed;
2. drain check — a draining server refuses new data requests with
   ``503`` while finishing in-flight ones;
3. token-bucket admission with a bounded wait queue — shed requests
   get ``429`` plus a jittered, streak-scaled ``Retry-After``;
4. per-endpoint circuit breaker — while the store is sick the endpoint
   fails fast with ``503`` instead of queueing doomed reads;
5. the read itself, deadline-propagated (`serve.queries`).

Every reply is a well-formed HTTP response with ``Connection: close``;
unexpected server-side failures map to ``503`` (breaker-counted), never
a half-written 200 or an unhandled traceback.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from ..core import telemetry as _telemetry
from ..core.config import ServeConfig
from ..core.store import StoreBackend, open_store
from .queries import BadRequest, DeadlineExceeded, NotFound, QueryService
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    ReadPool,
    TokenBucket,
)

__all__ = ["ServeApp", "DATA_ENDPOINTS"]

#: Endpoint groups with their own breaker + metrics label.
DATA_ENDPOINTS = ("rounds", "round", "ip", "clusters")

_REASONS = {
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    503: "Service Unavailable",
    200: "OK",
}


def _response(
    status: int,
    payload: dict | str,
    *,
    retry_after: int | None = None,
) -> bytes:
    """One complete HTTP response, always framed and always closing."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = "text/plain; charset=utf-8"
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        content_type = "application/json"
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if retry_after is not None:
        head.append(f"Retry-After: {retry_after}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


class ServeApp:
    """The serving process: listener, envelope, and drain protocol."""

    def __init__(
        self,
        db_path: str,
        config: ServeConfig | None = None,
        *,
        store_factory: Callable[[], StoreBackend] | None = None,
        fault: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.db_path = db_path
        self.config = config or ServeConfig()
        self._clock = clock
        factory = store_factory or (
            lambda: open_store(db_path, readonly=True)
        )
        self.pool = ReadPool(factory, self.config.readers)
        self.queries = QueryService(self.pool, fault=fault, clock=clock)
        self.admission = AdmissionController(
            TokenBucket(
                self.config.rate_per_second, self.config.burst, clock=clock
            ),
            queue_limit=self.config.accept_queue,
            retry_after_base=self.config.retry_after_base,
            retry_after_max=self.config.retry_after_max,
            clock=clock,
        )
        self.breakers = {
            endpoint: CircuitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown,
                clock=clock,
            )
            for endpoint in DATA_ENDPOINTS
        }
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._in_flight: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self.port: int | None = None

        tel = _telemetry.get()
        self._m_requests = tel.counter(
            "repro_serve_requests_total",
            "Completed serve responses by endpoint and status code",
            labels=("endpoint", "code"),
        )
        self._m_latency = tel.histogram(
            "repro_serve_request_seconds",
            "Wall-clock per serve request (parse to last byte)",
            labels=("endpoint",),
        )
        self._m_shed = tel.counter(
            "repro_serve_shed_total",
            "Requests shed instead of served, by reason",
            labels=("reason",),
        )
        self._m_breaker = tel.gauge(
            "repro_serve_breaker_state",
            "Per-endpoint breaker state (0 closed, 1 half-open, 2 open)",
            labels=("endpoint",),
        )
        self._m_in_flight = tel.gauge(
            "repro_serve_in_flight", "Requests currently being served"
        )
        self._m_draining = tel.gauge(
            "repro_serve_draining", "1 while SIGTERM drain is in progress"
        )
        self._telemetry = tel

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Open the reader pool and start listening; sets :attr:`port`."""
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_request_bytes,
            backlog=self.config.backlog,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    async def drain(self) -> bool:
        """Graceful shutdown: stop accepting, refuse new requests with
        503, let in-flight requests finish up to
        ``ServeConfig.drain_deadline``, then force-close stragglers.
        Returns True when everything finished inside the deadline."""
        self._draining = True
        self._m_draining.set(1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._in_flight if not task.done()}
        clean = True
        if pending:
            done, still = await asyncio.wait(
                pending, timeout=self.config.drain_deadline
            )
            if still:
                clean = False
                for task in still:
                    task.cancel()
                await asyncio.gather(*still, return_exceptions=True)
        for writer in list(self._writers):
            self._close_writer(writer)
        self.pool.close()
        return clean

    async def close(self) -> None:
        """Immediate teardown (tests): no drain courtesy."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._in_flight):
            task.cancel()
        if self._in_flight:
            await asyncio.gather(*self._in_flight, return_exceptions=True)
        for writer in list(self._writers):
            self._close_writer(writer)
        self.pool.close()

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        self._writers.discard(writer)
        try:
            writer.close()
        except Exception:
            pass

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # start_server runs this coroutine as its own task per
        # connection; registering the task lets drain() await (or, past
        # the drain deadline, cancel) every in-flight request.
        task = asyncio.current_task()
        assert task is not None
        self._in_flight.add(task)
        self._writers.add(writer)
        self._m_in_flight.set(len(self._in_flight))
        try:
            await self._handle(reader, writer)
        except asyncio.CancelledError:
            # Drain force-close cancels connection tasks; finishing the
            # task normally (the socket is already closed) keeps
            # asyncio's stream callback from logging the cancellation.
            pass
        finally:
            self._in_flight.discard(task)
            self._writers.discard(writer)
            self._m_in_flight.set(len(self._in_flight))

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        endpoint = "unparsed"
        status = 0
        try:
            request = await self._read_head(reader, writer)
            if request is None:
                return
            method, target = request
            endpoint, payload = await self._route(method, target)
            status = self._send(writer, payload)
        except asyncio.CancelledError:
            # Drain deadline force-close: never leave a half response.
            self._close_writer(writer)
            raise
        except (ConnectionError, OSError):
            pass  # client went away mid-reply
        finally:
            if status:
                self._m_requests.labels(
                    endpoint=endpoint, code=str(status)
                ).inc()
                self._m_latency.labels(endpoint=endpoint).observe(
                    time.perf_counter() - started
                )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writers.discard(writer)

    async def _read_head(self, reader, writer):
        """Parse ``METHOD TARGET`` under the slow-loris bounds; handles
        its own error responses and returns None when unusable."""
        try:
            blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"),
                timeout=self.config.header_timeout,
            )
        except asyncio.TimeoutError:
            self._shed("slow-client")
            self._try_send(writer, _response(408, "request timeout\n"))
            return None
        except asyncio.LimitOverrunError:
            self._shed("oversized-head")
            self._try_send(writer, _response(431, "request head too large\n"))
            return None
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        request_line = blob.split(b"\r\n", 1)[0]
        try:
            method, target, _version = (
                request_line.decode("latin-1").split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            self._try_send(writer, _response(400, "malformed request line\n"))
            return None
        return method, target

    def _try_send(self, writer, data: bytes) -> None:
        try:
            writer.write(data)
        except (ConnectionError, OSError):
            pass

    def _send(self, writer, payload: bytes) -> int:
        writer.write(payload)
        # Status code is parsed back out of the framed response so the
        # metrics always match what was actually sent.
        return int(payload.split(b" ", 2)[1])

    def _shed(self, reason: str) -> None:
        self._m_shed.labels(reason=reason).inc()

    # -- routing + envelope ---------------------------------------------

    def _update_breaker_gauges(self) -> None:
        for endpoint, breaker in self.breakers.items():
            self._m_breaker.labels(endpoint=endpoint).set(
                breaker.state_value
            )

    def _deadline_from(self, params: dict) -> float | None:
        raw = params.get("deadline_ms", [None])[0]
        if raw is None:
            budget = self.config.default_deadline
        else:
            try:
                budget = int(raw) / 1000.0
            except ValueError:
                return None
            if budget <= 0:
                return None
        return self._clock() + min(budget, self.config.max_deadline)

    async def _route(self, method: str, target: str):
        """Returns ``(endpoint_label, framed_response_bytes)``."""
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        params = parse_qs(parts.query)

        if path == "/healthz":
            return "healthz", _response(200, "ok\n")
        if path == "/readyz":
            return "readyz", self._readyz()
        if method not in ("GET", "HEAD"):
            return "other", _response(405, "only GET is served\n")

        endpoint, handler = self._dispatch(path, params)
        if handler is None:
            return endpoint, _response(404, f"no such resource {path}\n")

        if self._draining:
            self._shed("drain")
            return endpoint, _response(
                503, {"error": "draining", "retry_after": 1}, retry_after=1
            )

        deadline = self._deadline_from(params)
        if deadline is None:
            return endpoint, _response(
                400, {"error": "deadline_ms must be a positive integer"}
            )

        admission = await self.admission.admit(deadline)
        if not admission.admitted:
            self._shed("admission")
            return endpoint, _response(
                429,
                {"error": "overloaded", "retry_after": admission.retry_after},
                retry_after=admission.retry_after,
            )

        breaker = self.breakers[endpoint]
        if not breaker.allow():
            self._shed("breaker")
            self._update_breaker_gauges()
            return endpoint, _response(
                503,
                {"error": "circuit open", "endpoint": endpoint,
                 "retry_after": 1},
                retry_after=1,
            )

        try:
            with self._telemetry.span(f"serve:{endpoint}"):
                payload = await handler(deadline)
        except BadRequest as exc:
            breaker.record_success()  # client error: store is healthy
            response = _response(400, {"error": str(exc)})
        except NotFound as exc:
            breaker.record_success()
            response = _response(404, {"error": str(exc)})
        except DeadlineExceeded:
            self._shed("deadline")
            breaker.record_failure()
            response = _response(
                503, {"error": "deadline exceeded", "endpoint": endpoint},
                retry_after=1,
            )
        except Exception as exc:  # fail closed: any surprise is a 503
            self._shed("store-error")
            breaker.record_failure()
            response = _response(
                503,
                {"error": "store unavailable",
                 "detail": type(exc).__name__},
                retry_after=1,
            )
        else:
            breaker.record_success()
            response = _response(200, payload)
        self._update_breaker_gauges()
        return endpoint, response

    def _dispatch(self, path: str, params: dict):
        """Map a path to ``(endpoint_label, handler(deadline))``."""
        segments = [s for s in path.split("/") if s]
        if segments == ["rounds"]:
            return "rounds", self.queries.rounds
        if len(segments) == 2 and segments[0] == "rounds":
            raw = segments[1]
            return "round", lambda d: self.queries.round_detail(raw, d)
        if len(segments) == 2 and segments[0] == "ip":
            raw = segments[1]
            return "ip", lambda d: self.queries.ip_history(raw, d)
        if len(segments) == 2 and segments[0] == "clusters":
            raw = segments[1]
            column = params.get("column", ["template"])[0]
            try:
                limit = int(params.get("limit", ["20"])[0])
            except ValueError:
                limit = -1  # surfaces as BadRequest from the query
            return "clusters", lambda d: self.queries.cluster_aggregate(
                raw, d, column=column, limit=limit
            )
        return "other", None

    def _readyz(self) -> bytes:
        if self._draining:
            return _response(503, {"ready": False, "reason": "draining"})
        states = {
            endpoint: breaker.state
            for endpoint, breaker in self.breakers.items()
        }
        if all(state == "open" for state in states.values()):
            return _response(
                503, {"ready": False, "reason": "all breakers open",
                      "breakers": states}
            )
        return _response(200, {"ready": True, "breakers": states})
