"""Resilient query-serving layer (``repro serve``) plus its overload
chaos harness.

Submodules:

* :mod:`repro.serve.app` — the asyncio HTTP server (`ServeApp`) with
  admission control, per-endpoint circuit breakers, deadline budgets,
  and SIGTERM graceful drain;
* :mod:`repro.serve.queries` — deadline-propagated read paths over a
  pool of read-only stores (`QueryService`);
* :mod:`repro.serve.resilience` — the overload primitives
  (`TokenBucket`, `AdmissionController`, `CircuitBreaker`, `ReadPool`);
* :mod:`repro.serve.loadgen` — seeded open-loop workload generator and
  latency/outcome reporting for the chaos tests and
  ``benchmarks/bench_serve.py``.
"""

from .app import ServeApp
from .loadgen import LoadReport, RqsWorkload, run_workload
from .queries import (
    BadRequest,
    DeadlineExceeded,
    NotFound,
    QueryService,
    StoreError,
)
from .resilience import (
    Admission,
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    PoolTimeout,
    ReadPool,
    TokenBucket,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "BadRequest",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineExceeded",
    "LoadReport",
    "NotFound",
    "PoolTimeout",
    "QueryService",
    "ReadPool",
    "RqsWorkload",
    "ServeApp",
    "StoreError",
    "TokenBucket",
    "run_workload",
]
