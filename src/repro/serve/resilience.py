"""Overload-protection primitives for the query-serving layer.

Everything here exists to keep ``repro serve`` *degrading* instead of
*collapsing* when offered load exceeds capacity or the store turns
sick: a token-bucket :class:`AdmissionController` with a bounded wait
queue (explicit ``429`` shedding beyond it), a per-endpoint
:class:`CircuitBreaker` (the time-based sibling of the scanner's
``SubnetCircuitBreaker``), and a :class:`ReadPool` bounding concurrent
read-only store connections.  All clocks are injectable so the chaos
tests drive these deterministically.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable

from ..core.backoff import retry_after_seconds

__all__ = [
    "Admission",
    "AdmissionController",
    "BreakerState",
    "CircuitBreaker",
    "PoolTimeout",
    "ReadPool",
    "TokenBucket",
]


class TokenBucket:
    """Token bucket on an injectable monotonic clock.

    Unlike the scanner's async ``RateLimiter`` this one never sleeps —
    callers either take a token now or are told how long until the next
    one, so the admission controller stays in charge of all waiting
    (and can bound it by the request's deadline)."""

    def __init__(
        self,
        rate_per_second: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self._rate = rate_per_second
        self._capacity = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self._capacity, self._tokens + (now - self._stamp) * self._rate
        )
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def next_token_in(self) -> float:
        """Seconds until one token will be available (0 if already)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self._rate


class Admission:
    """Outcome of one admission attempt."""

    __slots__ = ("admitted", "retry_after")

    def __init__(self, admitted: bool, retry_after: int = 0):
        self.admitted = admitted
        self.retry_after = retry_after


class AdmissionController:
    """Token-bucket admission with a bounded accept queue.

    A request that finds no token may *wait* for one — but only
    ``queue_limit`` requests may wait at once, and never past their own
    deadline.  Everything else is shed immediately with a jittered
    ``Retry-After`` hint that grows with the consecutive-shed streak,
    de-synchronising the retrying herd.

    The wait queue is **FIFO**: replenished tokens go to the oldest
    waiter, and a newly-arrived request may only grab a token directly
    while nobody is queued.  Without this, under sustained overload the
    arrival flood steals every fresh token from the queue and an
    admitted request's latency stretches to its full deadline budget —
    with it, queue wait is bounded by ``queue_limit / rate``."""

    def __init__(
        self,
        bucket: TokenBucket,
        *,
        queue_limit: int,
        retry_after_base: float,
        retry_after_max: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._bucket = bucket
        self._queue_limit = queue_limit
        self._retry_base = retry_after_base
        self._retry_max = retry_after_max
        self._clock = clock
        self._queue: deque = deque()
        self._shed_streak = 0

    @property
    def waiting(self) -> int:
        return len(self._queue)

    def _shed(self) -> Admission:
        self._shed_streak += 1
        hint = retry_after_seconds(
            min(self._shed_streak, 16),
            base=self._retry_base,
            cap=self._retry_max,
            key=f"serve-shed:{self._shed_streak}",
        )
        return Admission(False, hint)

    async def admit(self, deadline: float) -> Admission:
        """Admit or shed one request; *deadline* bounds any waiting."""
        if not self._queue and self._bucket.try_acquire():
            self._shed_streak = 0
            return Admission(True)
        if len(self._queue) >= self._queue_limit:
            return self._shed()
        me = object()
        self._queue.append(me)
        try:
            while True:
                if self._queue[0] is me and self._bucket.try_acquire():
                    self._shed_streak = 0
                    return Admission(True)
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return self._shed()
                pause = max(0.001, min(
                    self._bucket.next_token_in(), remaining
                ))
                await asyncio.sleep(pause)
        finally:
            self._queue.remove(me)


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    #: Gauge encoding for telemetry.
    VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Per-endpoint breaker: fail fast while the store is sick.

    The scanner's ``SubnetCircuitBreaker`` counts consecutive failures
    and opens for the rest of a round; a serving breaker must instead
    *recover on its own*, so this one adds the classic time-based state
    machine: ``closed`` → (``threshold`` consecutive failures) →
    ``open`` (shed instantly) → after ``cooldown`` → ``half-open`` (one
    probe request allowed through) → back to ``closed`` on success, or
    straight back to ``open`` on failure.  ``threshold <= 0`` disables
    the breaker entirely."""

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._streak = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        # Promote open → half-open lazily on observation, so state
        # reads don't need a timer.
        if (
            self._state == BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = BreakerState.HALF_OPEN
            self._probing = False
        return self._state

    @property
    def state_value(self) -> int:
        return BreakerState.VALUES[self.state]

    def allow(self) -> bool:
        """May a request proceed right now?  In half-open state exactly
        one in-flight probe is allowed at a time."""
        if self.threshold <= 0:
            return True
        state = self.state
        if state == BreakerState.CLOSED:
            return True
        if state == BreakerState.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._streak = 0
        self._probing = False
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        if self.threshold <= 0:
            return
        self._streak += 1
        if (
            self._state == BreakerState.HALF_OPEN
            or self._streak >= self.threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._probing = False


class PoolTimeout(Exception):
    """No read connection became free inside the caller's budget."""


class ReadPool:
    """Bounded pool of read-only store connections.

    Pool size == maximum concurrent store reads: requests beyond it
    wait (bounded by their deadline) for a lease instead of opening
    unbounded connections.  Leases may be released from worker threads
    (reads run in ``asyncio.to_thread``), so release marshals back to
    the event loop."""

    def __init__(self, factory: Callable[[], object], size: int):
        if size <= 0:
            raise ValueError("pool size must be positive")
        self._factory = factory
        self.size = size
        self._idle: asyncio.Queue = asyncio.Queue()
        self._stores: list = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for _ in range(self.size):
            store = await asyncio.to_thread(self._factory)
            self._stores.append(store)
            self._idle.put_nowait(store)

    async def acquire(self, timeout: float):
        if self._closed:
            raise PoolTimeout("pool is closed")
        if timeout <= 0:
            raise PoolTimeout("no budget left to wait for a reader")
        try:
            return await asyncio.wait_for(self._idle.get(), timeout)
        except asyncio.TimeoutError:
            raise PoolTimeout(
                f"no reader free within {timeout:.3f}s"
            ) from None

    def release(self, store) -> None:
        """Return a lease; safe to call from any thread."""
        if self._closed:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._idle.put_nowait, store)
        else:  # pool torn down mid-release
            self._idle.put_nowait(store)

    @property
    def idle(self) -> int:
        return self._idle.qsize()

    def close(self) -> None:
        self._closed = True
        for store in self._stores:
            try:
                store.close()
            except Exception:
                pass
        self._stores.clear()
