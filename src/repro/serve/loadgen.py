"""Seeded open-loop workload generator for the serving layer.

Two deliberate modelling choices, both aimed at making overload tests
honest:

* **Traffic shape** follows the AsyncFlow-style requests-per-second
  generator: per sampling window, the number of active users is drawn
  from a Poisson around ``mean_users`` and each user emits requests at
  ``rate_per_user`` with exponential inter-arrival gaps — so offered
  load is bursty the way real traffic is, yet fully reproducible from
  the seed.
* **Open loop**: every request has an absolute scheduled start time
  computed up front, and the driver fires at that schedule regardless
  of how slowly earlier responses arrive.  A closed loop (wait for the
  response, then send the next) would silently throttle itself to the
  server's capacity — the coordinated-omission trap — and a 10×
  overload test would never actually deliver 10×.

Latency is measured schedule-to-last-byte, so queueing delay the server
causes is charged to the server.
"""

from __future__ import annotations

import asyncio
import math
import random
import time

__all__ = ["LoadReport", "RqsWorkload", "run_workload", "percentile"]


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler — fine for the small lambdas used here."""
    if lam <= 0:
        return 0
    limit = math.exp(-lam)
    k, product = 0, rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of *values*."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class RqsWorkload:
    """Deterministic request schedule: (start_offset, path) pairs.

    ``mean_users × rate_per_user`` is the average offered rate;
    ``user_window`` is how often the active-user count is re-drawn.
    ``paths`` maps request path → weight.
    """

    def __init__(
        self,
        *,
        mean_users: float,
        rate_per_user: float,
        duration: float,
        paths: dict[str, float],
        seed: int = 0,
        user_window: float = 1.0,
    ):
        if mean_users <= 0 or rate_per_user <= 0:
            raise ValueError("users and per-user rate must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if user_window <= 0:
            raise ValueError("user window must be positive")
        if not paths:
            raise ValueError("need at least one request path")
        self.mean_users = mean_users
        self.rate_per_user = rate_per_user
        self.duration = duration
        self.user_window = user_window
        self.paths = dict(paths)
        self.seed = seed

    @property
    def offered_rate(self) -> float:
        """Average requests/second this schedule aims for."""
        return self.mean_users * self.rate_per_user

    def schedule(self) -> list[tuple[float, str]]:
        """The full request schedule, sorted by start offset."""
        rng = random.Random(self.seed)
        path_names = sorted(self.paths)
        weights = [self.paths[name] for name in path_names]
        out: list[tuple[float, str]] = []
        window_start = 0.0
        while window_start < self.duration:
            window_end = min(window_start + self.user_window, self.duration)
            users = _poisson(rng, self.mean_users)
            for _ in range(users):
                # Each active user emits a Poisson process of requests
                # across this window: exponential gaps at rate_per_user.
                offset = window_start + rng.expovariate(
                    max(self.rate_per_user, 1e-9)
                )
                while offset < window_end:
                    path = rng.choices(path_names, weights=weights)[0]
                    out.append((offset, path))
                    offset += rng.expovariate(max(self.rate_per_user, 1e-9))
            window_start = window_end
        out.sort(key=lambda item: item[0])
        return out


class LoadReport:
    """Outcome tally of one workload run."""

    def __init__(self):
        #: status code -> list of schedule-to-last-byte latencies.
        self.latencies: dict[int, list[float]] = {}
        self.malformed = 0          # unparseable / truncated responses
        self.connect_errors = 0     # connection refused / reset
        self.sent = 0

    def observe(self, status: int, latency: float) -> None:
        self.latencies.setdefault(status, []).append(latency)

    @property
    def statuses(self) -> dict[int, int]:
        return {
            status: len(values)
            for status, values in sorted(self.latencies.items())
        }

    def count(self, status: int) -> int:
        return len(self.latencies.get(status, []))

    def percentile(self, q: float, status: int = 200) -> float:
        return percentile(self.latencies.get(status, []), q)

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "statuses": {str(k): v for k, v in self.statuses.items()},
            "malformed": self.malformed,
            "connect_errors": self.connect_errors,
            "latency_ms": {
                str(status): {
                    "p50": round(percentile(values, 50) * 1000, 3),
                    "p95": round(percentile(values, 95) * 1000, 3),
                    "p99": round(percentile(values, 99) * 1000, 3),
                    "max": round(max(values) * 1000, 3),
                }
                for status, values in sorted(self.latencies.items())
                if values
            },
        }


async def _one_request(
    host: str, port: int, path: str, report: LoadReport,
    started_at: float, timeout: float,
) -> None:
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError):
        report.connect_errors += 1
        return
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(1 << 20), timeout)
        status = _parse_response(raw)
        if status is None:
            report.malformed += 1
        else:
            report.observe(status, time.monotonic() - started_at)
    except (OSError, asyncio.TimeoutError, asyncio.LimitOverrunError):
        report.malformed += 1
    finally:
        try:
            writer.close()
        except Exception:
            pass


def _parse_response(raw: bytes) -> int | None:
    """Status code of a *complete, well-framed* response, else None."""
    if not raw.startswith(b"HTTP/1.1 "):
        return None
    head, separator, body = raw.partition(b"\r\n\r\n")
    if not separator:
        return None
    try:
        status = int(raw.split(b" ", 2)[1])
    except (IndexError, ValueError):
        return None
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                expected = int(value.strip())
            except ValueError:
                return None
            return status if len(body) == expected else None
    return None  # the server always sends Content-Length


async def run_workload(
    host: str, port: int, workload: RqsWorkload,
    *, timeout: float = 10.0,
) -> LoadReport:
    """Drive *workload* against a server, open-loop, and tally results.

    Requests launch at their pre-computed schedule offsets relative to
    one epoch taken at call time — a slow server does not slow the
    offered rate down."""
    report = LoadReport()
    schedule = workload.schedule()
    report.sent = len(schedule)
    epoch = time.monotonic()
    tasks = []
    for offset, path in schedule:
        delay = epoch + offset - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        # Latency is charged from the *scheduled* start, so server-side
        # queueing (and driver lag) counts against the server.
        tasks.append(asyncio.ensure_future(
            _one_request(host, port, path, report, epoch + offset, timeout)
        ))
    if tasks:
        await asyncio.gather(*tasks)
    return report
