"""Read paths behind the serving layer.

Each query leases one read-only :class:`~repro.core.store.StoreBackend`
from the bounded pool, runs the actual read in a worker thread with the
request's **deadline budget propagated into the store**
(:meth:`StoreBackend.read_deadline` aborts sqlite statements at
expiry), and maps every store-side failure onto a typed exception the
HTTP layer can translate into a well-formed status — a sick store must
produce fast ``503``\\ s, never hangs or stack traces.

The hot endpoints read the store's **materialized read models**: the
per-IP history comes from :meth:`StoreBackend.ip_history_rows` (light
rows, no page bodies), and round summaries / cluster aggregates come
from tables the writer folds incrementally — per-request GROUP-BY
scans are gone.

The optional *fault* hook is the chaos-harness injection point: it runs
inside the read thread before the real store read, so tests can make
reads slow (sleep), sick (raise), or both, and assert the envelope —
deadline expiry, breaker trips, pool exhaustion — instead of the
failure leaking to clients.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..cloudsim.addressing import int_to_ip, ip_to_int
from ..core.store import AGGREGATE_COLUMNS, StoreBackend, is_interrupted
from .resilience import PoolTimeout, ReadPool

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "NotFound",
    "StoreError",
    "QueryService",
]


class BadRequest(Exception):
    """Client-side nonsense (poison query): unparseable IP, bad id."""


class NotFound(Exception):
    """The resource does not exist (unknown round, never-seen IP is
    *not* a NotFound — absence is data in WhoWas)."""


class DeadlineExceeded(Exception):
    """The request's deadline budget expired before the read finished."""


class StoreError(Exception):
    """The store misbehaved (fault, corruption, sick disk) — breaker
    fodder."""


def _parse_round_id(raw: str) -> int:
    try:
        round_id = int(raw)
    except ValueError:
        raise BadRequest(f"round id must be an integer, got {raw!r}") from None
    if round_id < 0:
        raise BadRequest("round id must be non-negative")
    return round_id


class QueryService:
    """The serve layer's read API over a :class:`ReadPool`."""

    def __init__(
        self,
        pool: ReadPool,
        *,
        fault: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.pool = pool
        self._fault = fault
        self._clock = clock

    # -- plumbing --------------------------------------------------------

    async def _read(self, endpoint: str, deadline: float, fn):
        """Lease a reader and run ``fn(store)`` under the deadline.

        The wait for a lease, the chaos hook, and the sqlite read all
        spend the same budget; ``asyncio.wait_for`` is the outer bound,
        so even a read stuck in a non-interruptible fault returns a
        :class:`DeadlineExceeded` to the client on time (the thread
        keeps the lease until it actually finishes — a genuinely wedged
        store therefore drains the pool and later requests shed on
        :class:`PoolTimeout`, which is exactly the fail-fast signal the
        circuit breaker feeds on)."""
        remaining = deadline - self._clock()
        if remaining <= 0:
            raise DeadlineExceeded(endpoint)
        try:
            store = await self.pool.acquire(remaining)
        except PoolTimeout as exc:
            raise StoreError(f"{endpoint}: {exc}") from None

        def work():
            try:
                if self._fault is not None:
                    self._fault(endpoint)
                with store.read_deadline(deadline):
                    return fn(store)
            finally:
                self.pool.release(store)

        remaining = deadline - self._clock()
        if remaining <= 0:
            # The lease wait consumed the budget; the (released) lease
            # cost nothing.
            raise DeadlineExceeded(endpoint)
        try:
            return await asyncio.wait_for(
                asyncio.to_thread(work), remaining
            )
        except asyncio.TimeoutError:
            raise DeadlineExceeded(endpoint) from None
        except (BadRequest, NotFound, DeadlineExceeded):
            raise
        except Exception as exc:
            if is_interrupted(exc):
                raise DeadlineExceeded(endpoint) from None
            raise StoreError(f"{endpoint}: {exc}") from exc

    # -- endpoints -------------------------------------------------------

    async def rounds(self, deadline: float) -> dict:
        """Round summaries: every finalized round plus open ones."""

        def fn(store: StoreBackend):
            return {
                "rounds": [
                    {
                        "round_id": info.round_id,
                        "day": info.timestamp,
                        "targets_probed": info.targets_probed,
                        "responsive": info.responsive_count,
                        "errors": info.error_count,
                        "status": info.status,
                        "duration_seconds": info.duration_seconds,
                    }
                    for info in store.rounds()
                ],
                "in_progress": [
                    info.round_id for info in store.open_rounds()
                ],
            }

        return await self._read("rounds", deadline, fn)

    async def round_detail(self, raw_id: str, deadline: float) -> dict:
        round_id = _parse_round_id(raw_id)

        def fn(store: StoreBackend):
            try:
                info = store.round_info(round_id)
            except KeyError:
                raise NotFound(f"no round {round_id}") from None
            stats = store.round_stats(round_id)
            return {
                "round_id": info.round_id,
                "day": info.timestamp,
                "targets_probed": info.targets_probed,
                "status": info.status,
                "degraded": info.degraded,
                "errors": info.error_count,
                "duration_seconds": info.duration_seconds,
                "responsive": stats["responsive"],
                "available": stats["available"],
                "fetched": stats["fetched"],
                "quarantined": stats["quarantined"],
            }

        return await self._read("round", deadline, fn)

    async def ip_history(self, raw_ip: str, deadline: float) -> dict:
        """The WhoWas query: one IP's status/content history."""
        try:
            ip = ip_to_int(raw_ip)
        except (ValueError, OSError) as exc:
            raise BadRequest(f"bad IP address {raw_ip!r}: {exc}") from None

        def fn(store: StoreBackend):
            history = []
            for row in store.ip_history_rows(ip):
                open_ports = row["open_ports"]
                history.append({
                    "round_id": row["round_id"],
                    "day": row["timestamp"],
                    "open_ports": [
                        int(port) for port in open_ports.split(",") if port
                    ],
                    "fetch_status": row["fetch_status"],
                    "status_code": row["status_code"],
                    "server": row["server"],
                    "title": row["title"],
                    "template": row["template"],
                })
            return {"ip": int_to_ip(ip), "observations": history}

        return await self._read("ip", deadline, fn)

    async def cluster_aggregate(
        self, raw_id: str, deadline: float, *, column: str = "template",
        limit: int = 20,
    ) -> dict:
        round_id = _parse_round_id(raw_id)
        if column not in AGGREGATE_COLUMNS:
            raise BadRequest(f"cannot aggregate by {column!r}; pick one "
                             f"of {sorted(AGGREGATE_COLUMNS)}")
        if not 0 < limit <= 500:
            raise BadRequest("limit must be in 1..500")

        def fn(store: StoreBackend):
            try:
                groups = store.aggregate_column(
                    round_id, column, limit=limit
                )
            except KeyError:
                raise NotFound(f"no round {round_id}") from None
            return {
                "round_id": round_id,
                "column": column,
                "groups": [
                    {"value": value, "count": count}
                    for value, count in groups
                ],
            }

        return await self._read("clusters", deadline, fn)
