"""Banded locality-sensitive indexing over 96-bit simhashes.

The §5 second-level clustering connects fingerprints within a small
Hamming distance.  Done pairwise that is O(n²) — the next asymptotic
wall once rounds scale past ~10^5 records.  This module generates
candidate pairs in roughly O(n) with the classic *banded* simhash trick
(Manku et al., WWW'07):

**Band math.**  Split the ``HASH_BITS``-bit fingerprint into
``threshold + 1`` contiguous, disjoint bands.  Two fingerprints within
Hamming distance ``threshold`` differ in at most ``threshold`` bit
positions, which can touch at most ``threshold`` bands — so by
pigeonhole they agree *exactly* on at least one band.  Indexing every
fingerprint under each band's key therefore has **100% recall**: every
true pair collides in at least one band bucket.  Candidates are then
confirmed with an exact (vectorized) Hamming check, so the resulting
clustering is byte-identical to the brute-force path — the banding only
ever adds false *candidates*, never loses true pairs.

Precision degrades as ``threshold`` grows (narrower bands mean more
accidental collisions), which is fine in WhoWas's regime: the paper
merges at 3 bits and the tuned second-level thresholds stay in the
single digits, giving band widths of 12+ bits.

The index runs on the packed-uint64 numpy kernels from
:mod:`repro.core.simhash` when numpy >= 2.0 is importable, and falls
back to pure-python buckets and scalar popcounts otherwise (same
results, scalar speed).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..core.simhash import (
    HASH_BITS,
    hamming_distance,
    hamming_rows,
    numpy_available,
    pack_hashes,
)

__all__ = [
    "DEFAULT_EXACT_CUTOFF",
    "SimhashIndex",
    "band_layout",
]

#: Below this population size brute force beats index construction;
#: ``cluster_by_threshold``'s auto mode switches paths here.
DEFAULT_EXACT_CUTOFF = 256


def band_layout(threshold: int, *, bits: int = HASH_BITS,
                bands: int | None = None) -> list[tuple[int, int]]:
    """``(start, width)`` spans of the index bands for *threshold*.

    Defaults to the minimal exact-recall layout of ``threshold + 1``
    bands (at least ``ceil(bits / 64)`` so every band key fits one
    machine word); *bands* may request more (narrower bands trade
    precision for cheaper keys) but never fewer than ``threshold + 1``,
    and never more than *bits*.  Extra bands never lose recall — the
    pigeonhole argument only needs *at least* ``threshold + 1``.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if threshold >= bits:
        raise ValueError(
            f"threshold {threshold} >= {bits} bits connects every pair; "
            "index callers must shortcut that case"
        )
    required = threshold + 1
    if bands is None:
        bands = max(required, (bits + 63) // 64)
    if bands < required:
        raise ValueError(
            f"{bands} bands cannot guarantee recall at distance "
            f"{threshold}; need at least {required}"
        )
    if bands > bits:
        raise ValueError(f"cannot cut {bits} bits into {bands} bands")
    base, extra = divmod(bits, bands)
    spans = []
    start = 0
    for index in range(bands):
        width = base + (1 if index < extra else 0)
        spans.append((start, width))
        start += width
    return spans


class SimhashIndex:
    """Banded LSH index over a fingerprint population.

    Build once for a population and a distance bound, then:

    - :meth:`matching_pairs` — every (i, j, distance) with
      ``distance <= threshold``, deduplicated, exactly the pairs brute
      force would accept;
    - :meth:`clusters` — the single-linkage partition at ``threshold``
      or any smaller threshold, reusing the same band tables (a pair at
      distance ≤ t ≤ threshold also agrees on one of the wider layout's
      bands, so recall carries down).
    """

    def __init__(self, hashes: Sequence[int], threshold: int, *,
                 bits: int = HASH_BITS, bands: int | None = None):
        self.hashes = list(hashes)
        self.threshold = threshold
        self.bits = bits
        self.spans = band_layout(threshold, bits=bits, bands=bands)
        self._packed = (
            pack_hashes(self.hashes) if numpy_available() else None
        )
        self._pairs: tuple[list[int], list[int], list[int]] | None = None

    @property
    def bands(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # candidate generation

    def _band_keys_numpy(self, start: int, width: int):
        """Vectorized ``(hash >> start) & mask`` over the packed matrix."""
        import numpy as np

        packed = self._packed
        assert packed is not None
        mask = np.uint64((1 << width) - 1)
        if start >= 64:
            keys = packed[:, 1] >> np.uint64(start - 64)
        elif start + width <= 64:
            keys = packed[:, 0] >> np.uint64(start)
        else:  # band straddles the word boundary
            keys = (packed[:, 0] >> np.uint64(start)) | (
                packed[:, 1] << np.uint64(64 - start)
            )
        return keys & mask

    def _candidate_pairs_numpy(self, keys) -> tuple["object", "object"]:
        """(i_array, j_array) of bucket-mate index pairs for one band.

        Buckets are runs of equal keys in argsort order; same-size runs
        are gathered into one (runs, size) matrix so ``triu_indices``
        runs once per distinct bucket size, not once per bucket.
        """
        import numpy as np

        order = np.argsort(keys, kind="stable")
        ordered = keys[order]
        boundaries = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        sizes = np.diff(np.concatenate((starts, [order.shape[0]])))
        lefts: list["object"] = []
        rights: list["object"] = []
        for size in np.unique(sizes):
            if size < 2:
                continue
            block = order[starts[sizes == size][:, None] + np.arange(size)]
            local_i, local_j = np.triu_indices(int(size), k=1)
            lefts.append(block[:, local_i].ravel())
            rights.append(block[:, local_j].ravel())
        if not lefts:
            empty = np.empty(0, dtype=order.dtype)
            return empty, empty
        return np.concatenate(lefts), np.concatenate(rights)

    def _matching_pairs_numpy(self) -> tuple[list[int], list[int], list[int]]:
        import numpy as np

        packed = self._packed
        assert packed is not None
        out_l: list["object"] = []
        out_r: list["object"] = []
        out_d: list["object"] = []
        prior_keys: list["object"] = []
        for start, width in self.spans:
            keys = self._band_keys_numpy(start, width)
            left, right = self._candidate_pairs_numpy(keys)
            low = np.minimum(left, right)
            high = np.maximum(left, right)
            # First-band ownership replaces a global dedup sort: a pair
            # is emitted only by the first band whose keys agree, so
            # concatenating the per-band outputs is already duplicate-
            # free (within a band the bucket triu is unique by
            # construction).
            for keys_before in prior_keys:
                fresh = keys_before[low] != keys_before[high]
                low, high = low[fresh], high[fresh]
            distance = hamming_rows(packed[low], packed[high])
            keep = distance <= self.threshold
            out_l.append(low[keep])
            out_r.append(high[keep])
            out_d.append(distance[keep])
            prior_keys.append(keys)
        left = np.concatenate(out_l) if out_l else np.empty(0, np.int64)
        right = np.concatenate(out_r) if out_r else np.empty(0, np.int64)
        distance = np.concatenate(out_d) if out_d else np.empty(0, np.int64)
        return left.tolist(), right.tolist(), distance.tolist()

    def _matching_pairs_python(self) -> tuple[list[int], list[int], list[int]]:
        seen: set[tuple[int, int]] = set()
        lefts: list[int] = []
        rights: list[int] = []
        distances: list[int] = []
        for start, width in self.spans:
            mask = (1 << width) - 1
            buckets: dict[int, list[int]] = {}
            for index, value in enumerate(self.hashes):
                buckets.setdefault((value >> start) & mask, []).append(index)
            for members in buckets.values():
                if len(members) < 2:
                    continue
                for i, j in combinations(members, 2):
                    pair = (i, j) if i < j else (j, i)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    distance = hamming_distance(
                        self.hashes[pair[0]], self.hashes[pair[1]]
                    )
                    if distance <= self.threshold:
                        lefts.append(pair[0])
                        rights.append(pair[1])
                        distances.append(distance)
        return lefts, rights, distances

    # ------------------------------------------------------------------
    # public API

    def matching_pairs(
        self, threshold: int | None = None
    ) -> tuple[list[int], list[int], list[int]]:
        """All index pairs ``(i, j)``, ``i < j``, within *threshold* bits.

        *threshold* defaults to the index's own bound and may be any
        value ≤ it (the band layout's recall guarantee covers every
        smaller distance).  Returns parallel lists (i, j, distance).
        """
        limit = self.threshold if threshold is None else threshold
        if limit > self.threshold:
            raise ValueError(
                f"index built for distance <= {self.threshold}, "
                f"cannot answer {limit}"
            )
        if self._pairs is None:
            if self._packed is not None:
                self._pairs = self._matching_pairs_numpy()
            else:
                self._pairs = self._matching_pairs_python()
        if limit == self.threshold:
            return self._pairs
        lefts, rights, distances = self._pairs
        kept = [
            (i, j, d)
            for i, j, d in zip(lefts, rights, distances)
            if d <= limit
        ]
        if not kept:
            return [], [], []
        out_l, out_r, out_d = zip(*kept)
        return list(out_l), list(out_r), list(out_d)

    def clusters(self, threshold: int | None = None) -> list[list[int]]:
        """Single-linkage partition of the population at *threshold*.

        Same contract as the brute-force
        :func:`~repro.analysis.gap_statistic.cluster_by_threshold`:
        a list of clusters, each a list of fingerprint values (duplicates
        preserved), together covering the input exactly.
        """
        count = len(self.hashes)
        parent = list(range(count))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        lefts, rights, _ = self.matching_pairs(threshold)
        for i, j in zip(lefts, rights):
            root_i, root_j = find(i), find(j)
            if root_i != root_j:
                parent[root_i] = root_j
        groups: dict[int, list[int]] = {}
        for index in range(count):
            groups.setdefault(find(index), []).append(self.hashes[index])
        return list(groups.values())
