"""Cross-cloud cluster overlap (§8.1).

The paper finds 980 clusters using both EC2 and Azure; 85% of them use
the same average number of IPs in each cloud (all small), a handful use
many more IPs in EC2 (one VPN service: 2,000+ more), and no cluster
migrated between the clouds during the measurement.

Two campaigns' clusterings are matched by content identity: equal
level-1 keys (title, template, server, keywords, Analytics ID) plus
simhash proximity of representative fingerprints — the same service
deployed in both clouds produces matching keys even though it was
clustered separately per cloud.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core.simhash import hamming_distance
from .clustering import Cluster, ClusteringResult
from .dataset import Dataset

__all__ = ["CrossCloudMatch", "CrossCloudOverlap", "find_cross_cloud_clusters"]


@dataclass(frozen=True)
class CrossCloudMatch:
    """One web application observed in both clouds."""

    title: str
    cluster_a: int
    cluster_b: int
    avg_size_a: float
    avg_size_b: float

    @property
    def same_footprint(self) -> bool:
        """§8.1 counts clusters using "the same average number of IPs
        in each cloud" (rounded to whole instances)."""
        return round(self.avg_size_a) == round(self.avg_size_b)

    @property
    def size_gap(self) -> float:
        return self.avg_size_a - self.avg_size_b


@dataclass(frozen=True)
class CrossCloudOverlap:
    """Result of matching two clouds' clusterings."""

    matches: tuple[CrossCloudMatch, ...]

    @property
    def count(self) -> int:
        return len(self.matches)

    def same_footprint_share(self) -> float:
        if not self.matches:
            return 0.0
        same = sum(1 for m in self.matches if m.same_footprint)
        return same / len(self.matches) * 100.0

    def largest_gap(self) -> CrossCloudMatch | None:
        if not self.matches:
            return None
        return max(self.matches, key=lambda m: abs(m.size_gap))


def _representatives(dataset: Dataset,
                     clustering: ClusteringResult) -> dict[int, int]:
    """Median simhash fingerprint per cluster (median of members)."""
    hashes: dict[int, list[int]] = {}
    for obs in dataset.observations():
        if not obs.has_page:
            continue
        cid = clustering.cluster_of(obs.ip, obs.round_id)
        if cid is not None:
            hashes.setdefault(cid, []).append(obs.features.simhash)
    return {
        cid: statistics.median_low(values)
        for cid, values in hashes.items()
    }


def find_cross_cloud_clusters(
    dataset_a: Dataset,
    clustering_a: ClusteringResult,
    dataset_b: Dataset,
    clustering_b: ClusteringResult,
    *,
    max_distance: int = 16,
) -> CrossCloudOverlap:
    """Match cluster pairs representing the same application."""
    reps_a = _representatives(dataset_a, clustering_a)
    reps_b = _representatives(dataset_b, clustering_b)
    by_key_b: dict[tuple, list[int]] = {}
    for cid, cluster in clustering_b.clusters.items():
        by_key_b.setdefault(cluster.level1_key, []).append(cid)

    matches: list[CrossCloudMatch] = []
    rounds_a = dataset_a.round_count
    rounds_b = dataset_b.round_count
    for cid_a, cluster_a in clustering_a.clusters.items():
        candidates = by_key_b.get(cluster_a.level1_key)
        if not candidates:
            continue
        rep_a = reps_a.get(cid_a)
        if rep_a is None:
            continue
        best: tuple[int, int] | None = None
        for cid_b in candidates:
            rep_b = reps_b.get(cid_b)
            if rep_b is None:
                continue
            distance = hamming_distance(rep_a, rep_b)
            if distance <= max_distance and (
                best is None or distance < best[1]
            ):
                best = (cid_b, distance)
        if best is None:
            continue
        cluster_b: Cluster = clustering_b.clusters[best[0]]
        matches.append(
            CrossCloudMatch(
                title=cluster_a.title,
                cluster_a=cid_a,
                cluster_b=best[0],
                avg_size_a=cluster_a.average_size(rounds_a),
                avg_size_b=cluster_b.average_size(rounds_b),
            )
        )
    return CrossCloudOverlap(matches=tuple(matches))
