"""Finding and analysing malicious activity (§8.2).

Two independent detectors are joined with WhoWas data:

* **Safe Browsing** — every URL extracted from fetched pages is queried
  per round; an IP is *malicious* when its page embeds a listed URL.
  WhoWas then measures malicious-IP lifetimes (Figure 16) and finds
  *linchpin* IPs whose pages aggregate many malicious URLs.
* **VirusTotal** — per-IP reports, applying the ≥ 2-engine consensus
  rule; WhoWas classifies the content behaviour of detected IPs into
  the three types of §8.2, measures blacklist lag (Figure 19), breaks
  detections down by region and month (Table 17) and ranks the domains
  of malicious URLs (Table 18).  Clusters also *spread* labels: IPs
  sharing a final cluster with a detected IP are flagged too.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..cloudsim.blacklist import SafeBrowsingSim, VirusTotalReport, VirusTotalSim
from .clustering import ClusteringResult
from .dataset import Dataset

__all__ = [
    "MaliciousIp",
    "SafeBrowsingFindings",
    "SafeBrowsingAnalyzer",
    "VirusTotalFindings",
    "VirusTotalAnalyzer",
]


@dataclass
class MaliciousIp:
    """One IP observed hosting a page with blacklisted URLs."""

    ip: int
    urls: set[str] = field(default_factory=set)
    categories: set[str] = field(default_factory=set)
    #: Timestamps (days) of rounds where the page carried a listed URL.
    malicious_days: list[int] = field(default_factory=list)
    clusters: set[int] = field(default_factory=set)

    @property
    def lifetime_days(self) -> int:
        """Days between first and last malicious observation, inclusive."""
        if not self.malicious_days:
            return 0
        return self.malicious_days[-1] - self.malicious_days[0] + 1

    @property
    def is_linchpin(self) -> bool:
        """Linchpin IPs aggregate many malicious URLs (§8.2 uses pages
        with over a hundred; ≥ 20 marks the aggregation behaviour)."""
        return len(self.urls) >= 20


@dataclass(frozen=True)
class SafeBrowsingFindings:
    """Aggregate Safe Browsing results for one campaign."""

    malicious_ips: dict[int, MaliciousIp]
    distinct_urls: int
    phishing_pages: int
    malware_pages: int
    clusters: set[int]

    def lifetimes(self) -> list[int]:
        return sorted(m.lifetime_days for m in self.malicious_ips.values())

    def linchpins(self) -> list[MaliciousIp]:
        return [m for m in self.malicious_ips.values() if m.is_linchpin]


class SafeBrowsingAnalyzer:
    """Queries every extracted URL against Safe Browsing per round."""

    def __init__(self, dataset: Dataset, safe_browsing: SafeBrowsingSim,
                 clustering: ClusteringResult | None = None):
        self.dataset = dataset
        self.safe_browsing = safe_browsing
        self.clustering = clustering

    def scan(self) -> SafeBrowsingFindings:
        malicious: dict[int, MaliciousIp] = {}
        all_urls: set[str] = set()
        categories_per_ip: Counter[str] = Counter()
        for obs in self.dataset.observations():
            if not obs.links:
                continue
            day = obs.timestamp
            hits = [
                (url, self.safe_browsing.lookup(url, day))
                for url in obs.links
            ]
            listed = [(url, status) for url, status in hits if status != "ok"]
            if not listed:
                continue
            record = malicious.setdefault(obs.ip, MaliciousIp(obs.ip))
            for url, status in listed:
                record.urls.add(url)
                record.categories.add(status)
                all_urls.add(url)
            record.malicious_days.append(day)
            if self.clustering is not None:
                cid = self.clustering.cluster_of(obs.ip, obs.round_id)
                if cid is not None:
                    record.clusters.add(cid)
        for record in malicious.values():
            record.malicious_days.sort()
            label = "phishing" if "phishing" in record.categories else "malware"
            categories_per_ip[label] += 1
        clusters = {
            cid for record in malicious.values() for cid in record.clusters
        }
        return SafeBrowsingFindings(
            malicious_ips=malicious,
            distinct_urls=len(all_urls),
            phishing_pages=categories_per_ip["phishing"],
            malware_pages=categories_per_ip["malware"],
            clusters=clusters,
        )

    def lifetimes_by_kind(self, findings: SafeBrowsingFindings,
                          kind_of) -> dict[str, list[int]]:
        """Figure 16's classic/VPC split of malicious-IP lifetimes."""
        split: dict[str, list[int]] = {"classic": [], "vpc": []}
        for record in findings.malicious_ips.values():
            split[kind_of(record.ip)].append(record.lifetime_days)
        return {kind: sorted(values) for kind, values in split.items()}


@dataclass(frozen=True)
class VirusTotalFindings:
    """Aggregate VirusTotal results for one campaign."""

    reports: dict[int, VirusTotalReport]        # malicious (≥2 engines) only
    by_region_month: dict[tuple[str, int], int]  # Table 17
    domain_counts: Counter                       # Table 18
    behaviour_types: dict[int, int]              # ip -> 1/2/3 (clustered IPs)
    lag_before: dict[int, list[float]]           # type -> days to detection
    lag_after: dict[int, list[float]]            # type -> days alive after
    spread_labels: dict[int, set[int]]           # seed ip -> extra ips

    @property
    def malicious_ip_count(self) -> int:
        return len(self.reports)

    def top_domains(self, count: int = 10) -> list[tuple[str, int]]:
        return self.domain_counts.most_common(count)

    def region_month_table(self) -> dict[str, dict[int, int]]:
        table: dict[str, dict[int, int]] = {}
        for (region, month), value in self.by_region_month.items():
            table.setdefault(region, {})[month] = value
        return table


class VirusTotalAnalyzer:
    """Joins VirusTotal reports with WhoWas page histories."""

    def __init__(
        self,
        dataset: Dataset,
        virustotal: VirusTotalSim,
        clustering: ClusteringResult | None = None,
        *,
        region_of=None,
        min_engines: int = 2,
        days_per_month: int = 31,
    ):
        self.dataset = dataset
        self.virustotal = virustotal
        self.clustering = clustering
        self._region_of = region_of
        self.min_engines = min_engines
        self.days_per_month = days_per_month

    # ------------------------------------------------------------------

    def collect_reports(self) -> dict[int, VirusTotalReport]:
        """Query VT for every IP ever responsive; keep ≥ N-engine hits."""
        malicious: dict[int, VirusTotalReport] = {}
        for ip in self.dataset.by_ip:
            report = self.virustotal.report(ip)
            if report.is_malicious(self.min_engines):
                malicious[ip] = report
        return malicious

    def analyze(self) -> VirusTotalFindings:
        reports = self.collect_reports()

        by_region_month: Counter = Counter()
        domain_counts: Counter = Counter()
        for ip, report in reports.items():
            months = {d.day // self.days_per_month for d in report.detections}
            region = self._region_of(ip) if self._region_of else "all"
            for month in months:
                by_region_month[(region, month)] += 1
            for detection in report.detections:
                domain = detection.url.split("/")[2]
                domain_counts[domain] += 1

        behaviour: dict[int, int] = {}
        lag_before: dict[int, list[float]] = {1: [], 2: [], 3: []}
        lag_after: dict[int, list[float]] = {1: [], 2: [], 3: []}
        for ip, report in reports.items():
            kind = self._behaviour_type(ip)
            if kind is None:
                continue
            behaviour[ip] = kind
            first = report.first_detection_day()
            last = report.last_detection_day()
            pages = [o for o in self.dataset.history(ip) if o.has_page]
            if first is not None and pages:
                first_page = pages[0].timestamp
                lag_before[kind].append(max(0.0, first - first_page))
            if last is not None and pages:
                last_page = pages[-1].timestamp
                lag_after[kind].append(max(0.0, last_page - last))

        spread = self._spread_labels(reports)
        return VirusTotalFindings(
            reports=reports,
            by_region_month=dict(by_region_month),
            domain_counts=domain_counts,
            behaviour_types=behaviour,
            lag_before=lag_before,
            lag_after=lag_after,
            spread_labels=spread,
        )

    # ------------------------------------------------------------------

    def _behaviour_type(self, ip: int) -> int | None:
        """Classify the content behaviour of a detected IP (§8.2):
        type 1 hosts one unchanged page, type 2's page comes and goes,
        type 3 hosts several distinct pages.  Needs clustered content."""
        if self.clustering is None:
            return None
        sequence: list[int | None] = []
        for obs in self.dataset.history(ip):
            if obs.has_page:
                sequence.append(self.clustering.cluster_of(obs.ip, obs.round_id))
            else:
                sequence.append(None)
        observed = [cid for cid in sequence if cid is not None]
        if not observed:
            return None
        distinct = len(set(observed))
        if distinct >= 3:
            return 3
        # Gap detection: the same cluster disappears then reappears.
        compact: list[int | None] = []
        for cid in sequence:
            if not compact or compact[-1] != cid:
                compact.append(cid)
        for cid in set(observed):
            if compact.count(cid) > 1:
                return 2
        return 1 if distinct == 1 else 3

    def _spread_labels(
        self, reports: dict[int, VirusTotalReport]
    ) -> dict[int, set[int]]:
        """Label additional IPs via shared final clusters (§8.2's
        "+191 IPs" result)."""
        if self.clustering is None:
            return {}
        spread: dict[int, set[int]] = {}
        for ip in reports:
            extra: set[int] = set()
            for obs in self.dataset.history(ip):
                if not obs.has_page:
                    continue
                cid = self.clustering.cluster_of(obs.ip, obs.round_id)
                if cid is None:
                    continue
                cluster = self.clustering.clusters[cid]
                extra |= cluster.ips() - {ip} - set(reports)
            if extra:
                spread[ip] = extra
        return spread
