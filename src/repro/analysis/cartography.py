"""Cloud cartography: labeling EC2 IPs as VPC or classic via DNS (§5).

The decision rule, per public IP, resolving its EC2-style hostname from
inside the cloud:

* answer is an **SOA** record → no active instance, and the IP is
  **classic**;
* answer is an IP **inside EC2's public space** → the IP is **VPC**;
* any other answer (a private address) → **classic** networking.

Applying the rule across the space produces a per-prefix map (Table 2
reports it at /22 granularity) that other analyses use to split
clusters and time series by networking kind (Figures 13 and 14).
"""

from __future__ import annotations

from ..cloudsim.addressing import Prefix
from ..cloudsim.dns import CloudDns, public_hostname
from ..cloudsim.providers import NetKind, ProviderTopology

__all__ = ["CartographyMap", "Cartographer", "VpcUsageAnalyzer"]


class CartographyMap:
    """The measured prefix → networking-kind map, with O(1) IP lookup.

    All of a provider's advertised prefixes share one length, so lookup
    is a mask-and-dict-get.
    """

    def __init__(self, prefix_kinds: dict[Prefix, str]):
        self.prefix_kinds = dict(prefix_kinds)
        lengths = {p.length for p in prefix_kinds}
        if len(lengths) > 1:
            raise ValueError(f"mixed prefix lengths: {sorted(lengths)}")
        self._length = lengths.pop() if lengths else 32
        self._mask = ~((1 << (32 - self._length)) - 1) & 0xFFFFFFFF
        self._bases = {p.network: kind for p, kind in prefix_kinds.items()}

    def kind_of(self, ip: int) -> str:
        kind = self._bases.get(ip & self._mask)
        if kind is None:
            raise KeyError(f"no prefix covers {ip}")
        return kind

    def vpc_prefix_count(self) -> int:
        return sum(1 for kind in self.prefix_kinds.values() if kind == NetKind.VPC)


class Cartographer:
    """One-time DNS sweep labeling every prefix VPC or classic."""

    def __init__(self, topology: ProviderTopology, dns: CloudDns):
        self.topology = topology
        self.dns = dns

    def classify_ip(self, ip: int) -> str:
        """Apply the §5 decision rule to one address."""
        answer = self.dns.resolve(public_hostname(ip))
        if answer.is_soa:
            return NetKind.CLASSIC
        if self.dns.in_public_space(answer.address):
            return NetKind.VPC
        return NetKind.CLASSIC

    def map_prefixes(self, sample_per_prefix: int | None = None) -> CartographyMap:
        """Label every advertised prefix.

        The paper queries every public IP (with a low rate limit); pass
        *sample_per_prefix* to query only evenly-spaced addresses per
        prefix — VPC labels are a per-prefix property, so any VPC answer
        marks the whole prefix.
        """
        prefix_kinds: dict[Prefix, str] = {}
        for region in self.topology.space.regions:
            for prefix in region.prefixes:
                prefix_kinds[prefix] = self._classify_prefix(
                    prefix, sample_per_prefix
                )
        return CartographyMap(prefix_kinds)

    def _classify_prefix(self, prefix: Prefix,
                         sample_per_prefix: int | None) -> str:
        if sample_per_prefix is None or sample_per_prefix >= prefix.size:
            addresses = iter(prefix)
        else:
            step = max(1, prefix.size // sample_per_prefix)
            addresses = iter(range(prefix.first, prefix.last + 1, step))
        for address in addresses:
            if self.classify_ip(address) == NetKind.VPC:
                return NetKind.VPC
        return NetKind.CLASSIC

    def summarize(self, cartography: CartographyMap) -> dict[str, tuple[int, float]]:
        """Table 2: per region, number of VPC prefixes and the share of
        the region's IPs they cover."""
        summary: dict[str, tuple[int, float]] = {}
        for region in self.topology.space.regions:
            vpc_prefixes = [
                p for p in region.prefixes
                if cartography.prefix_kinds[p] == NetKind.VPC
            ]
            vpc_ips = sum(p.size for p in vpc_prefixes)
            share = vpc_ips / region.size * 100.0 if region.size else 0.0
            summary[region.name] = (len(vpc_prefixes), share)
        return summary


class VpcUsageAnalyzer:
    """VPC vs classic usage over time (Figures 13 and 14, §8.1).

    Splits per-round responsive/available IP counts by networking kind,
    and classifies clusters as classic-only / VPC-only / mixed per round
    — including the transition counts between those groups over the
    campaign.
    """

    def __init__(self, dataset, clustering, cartography: CartographyMap):
        self.dataset = dataset
        self.clustering = clustering
        self.cartography = cartography

    def ip_series(self) -> dict[str, list[int]]:
        """Per-round responsive/available counts for each kind."""
        series = {
            "classic_responsive": [],
            "classic_available": [],
            "vpc_responsive": [],
            "vpc_available": [],
        }
        for rid in self.dataset.round_ids:
            counts = {key: 0 for key in series}
            for obs in self.dataset.by_round[rid]:
                kind = self.cartography.kind_of(obs.ip)
                counts[f"{kind}_responsive"] += 1
                if obs.available:
                    counts[f"{kind}_available"] += 1
            for key in series:
                series[key].append(counts[key])
        return series

    def cluster_kind(self, cluster) -> str:
        """classic / vpc / mixed, over the cluster's whole life."""
        kinds = {self.cartography.kind_of(ip) for ip in cluster.ips()}
        if kinds == {NetKind.CLASSIC}:
            return "classic-only"
        if kinds == {NetKind.VPC}:
            return "vpc-only"
        return "mixed"

    def cluster_kind_totals(self) -> dict[str, int]:
        """Whole-campaign cluster counts per kind (§8.1's 72.9% /
        24.5% / 2.6% split)."""
        totals = {"classic-only": 0, "vpc-only": 0, "mixed": 0}
        for cluster in self.clustering.clusters.values():
            totals[self.cluster_kind(cluster)] += 1
        return totals

    def cluster_kind_series(self) -> dict[str, list[int]]:
        """Per-round counts of classic-only / vpc-only / mixed clusters
        (Figure 14), using each cluster's per-round IP sets."""
        series = {"classic-only": [], "vpc-only": [], "mixed": []}
        per_round_kind: dict[int, dict[int, str]] = {
            rid: {} for rid in self.dataset.round_ids
        }
        for cluster in self.clustering.clusters.values():
            by_round: dict[int, set[str]] = {}
            for ip, rid in cluster.members:
                by_round.setdefault(rid, set()).add(self.cartography.kind_of(ip))
            for rid, kinds in by_round.items():
                if kinds == {NetKind.CLASSIC}:
                    label = "classic-only"
                elif kinds == {NetKind.VPC}:
                    label = "vpc-only"
                else:
                    label = "mixed"
                per_round_kind[rid][cluster.cluster_id] = label
        for rid in self.dataset.round_ids:
            counts = {"classic-only": 0, "vpc-only": 0, "mixed": 0}
            for label in per_round_kind[rid].values():
                counts[label] += 1
            for key in series:
                series[key].append(counts[key])
        return series

    def transitions(self) -> dict[str, int]:
        """Clusters that moved classic→VPC or VPC→classic over time,
        judged by their first vs last round with members."""
        moves = {"classic_to_vpc": 0, "vpc_to_classic": 0}
        for cluster in self.clustering.clusters.values():
            by_round: dict[int, set[str]] = {}
            for ip, rid in cluster.members:
                by_round.setdefault(rid, set()).add(self.cartography.kind_of(ip))
            if len(by_round) < 2:
                continue
            ordered = [by_round[rid] for rid in self.dataset.round_ids
                       if rid in by_round]
            first, last = ordered[0], ordered[-1]
            if first == {NetKind.CLASSIC} and NetKind.VPC in last:
                moves["classic_to_vpc"] += 1
            elif first == {NetKind.VPC} and NetKind.CLASSIC in last:
                moves["vpc_to_classic"] += 1
        return moves
