"""Cloud usage dynamics (§8.1): responsiveness, availability, churn.

Produces the data behind Tables 3, 4, 5 and 7 and Figures 8, 9 and 10:
per-round time series of responsive/available IPs and clusters, the
port/status/content-type mixes, growth over the campaign, and the
status-churn measures that are WhoWas's headline capability.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from .clustering import ClusteringResult
from .dataset import Dataset

__all__ = [
    "SeriesSummary",
    "ChurnRates",
    "DynamicsAnalyzer",
]


@dataclass(frozen=True)
class SeriesSummary:
    """Min/max/avg/σ/growth of one per-round series (a Table 7 column)."""

    minimum: float
    maximum: float
    average: float
    std_dev: float
    growth: float          # last − first
    growth_pct: float      # relative to the first round

    @classmethod
    def of(cls, series: list[float]) -> "SeriesSummary":
        if not series:
            raise ValueError("empty series")
        average = sum(series) / len(series)
        variance = sum((v - average) ** 2 for v in series) / len(series)
        growth = series[-1] - series[0]
        growth_pct = (growth / series[0] * 100.0) if series[0] else 0.0
        return cls(
            minimum=min(series),
            maximum=max(series),
            average=average,
            std_dev=math.sqrt(variance),
            growth=growth,
            growth_pct=growth_pct,
        )


@dataclass(frozen=True)
class ChurnRates:
    """Average per-round status-change rates (§8.1 "IP status churn")."""

    overall: float          # any status change / all probed IPs
    responsiveness: float
    availability: float
    cluster: float
    #: Same rates relative to IPs responsive in either adjacent round.
    overall_relative: float
    responsiveness_relative: float
    availability_relative: float
    cluster_relative: float


class DynamicsAnalyzer:
    """Usage/churn analyses over one campaign."""

    def __init__(self, dataset: Dataset,
                 clustering: ClusteringResult | None = None):
        self.dataset = dataset
        self.clustering = clustering

    # ------------------------------------------------------------------
    # time series (Figure 8)

    def responsive_series(self) -> list[int]:
        return [
            len(self.dataset.by_round[rid]) for rid in self.dataset.round_ids
        ]

    def available_series(self) -> list[int]:
        return [
            sum(1 for o in self.dataset.by_round[rid] if o.available)
            for rid in self.dataset.round_ids
        ]

    def cluster_series(self) -> list[int]:
        """Number of distinct final clusters present per round."""
        clustering = self._require_clustering()
        counts = Counter()
        for cluster in clustering.clusters.values():
            for round_id in cluster.rounds():
                counts[round_id] += 1
        return [counts.get(rid, 0) for rid in self.dataset.round_ids]

    # ------------------------------------------------------------------
    # Table 7

    def usage_summary(self) -> dict[str, SeriesSummary]:
        summary = {
            "responsive": SeriesSummary.of(
                [float(v) for v in self.responsive_series()]
            ),
            "available": SeriesSummary.of(
                [float(v) for v in self.available_series()]
            ),
        }
        if self.clustering is not None:
            summary["clusters"] = SeriesSummary.of(
                [float(v) for v in self.cluster_series()]
            )
        return summary

    def space_size(self) -> int:
        return self.dataset.targets_probed(self.dataset.round_ids[0])

    # ------------------------------------------------------------------
    # Tables 3, 4, 5

    def port_profile_table(self) -> dict[str, float]:
        """Average % of responsive IPs per round with each port profile
        (Table 3)."""
        per_round: list[Counter] = []
        for rid in self.dataset.round_ids:
            counter = Counter(o.port_profile for o in self.dataset.by_round[rid])
            per_round.append(counter)
        labels = ("22-only", "80-only", "443-only", "80&443")
        table: dict[str, float] = {}
        for label in labels:
            shares = []
            for counter in per_round:
                total = sum(counter.values())
                shares.append(counter.get(label, 0) / total * 100.0 if total else 0.0)
            table[label] = sum(shares) / len(shares)
        return table

    def status_code_table(self) -> dict[str, float]:
        """Average % of HTTP-responding IPs per round in each status
        class (Table 4)."""
        labels = ("200", "4xx", "5xx", "other")
        per_round: list[Counter] = []
        for rid in self.dataset.round_ids:
            counter = Counter(
                o.status_class
                for o in self.dataset.by_round[rid]
                if o.status_code is not None
            )
            per_round.append(counter)
        table = {}
        for label in labels:
            shares = []
            for counter in per_round:
                total = sum(counter.values())
                shares.append(counter.get(label, 0) / total * 100.0 if total else 0.0)
            table[label] = sum(shares) / len(shares)
        return table

    def content_type_table(self, top: int = 5) -> list[tuple[str, float]]:
        """Top content types among collected webpages (Table 5)."""
        counter: Counter[str] = Counter()
        for obs in self.dataset.observations():
            if obs.has_page and obs.content_type:
                counter[obs.content_type] += 1
        total = sum(counter.values())
        if total == 0:
            return []
        ranked = counter.most_common()
        head = [(name, count / total * 100.0) for name, count in ranked[:top]]
        tail = sum(count for _, count in ranked[top:]) / total * 100.0
        if tail:
            head.append(("other", tail))
        return head

    # ------------------------------------------------------------------
    # churn (Figure 9, §8.1)

    def churn_series(self) -> list[dict[str, float]]:
        """Per adjacent round pair: status-change rates as % of all
        probed IPs, plus the relative variants."""
        dataset = self.dataset
        clustering = self.clustering
        series: list[dict[str, float]] = []
        round_ids = dataset.round_ids
        for previous_rid, current_rid in zip(round_ids, round_ids[1:]):
            previous = {o.ip: o for o in dataset.by_round[previous_rid]}
            current = {o.ip: o for o in dataset.by_round[current_rid]}
            union_ips = set(previous) | set(current)
            total = dataset.targets_probed(current_rid)

            responsive_changes = len(set(previous) ^ set(current))
            availability_changes = 0
            cluster_changes = 0
            changed_any = set(previous.keys()) ^ set(current.keys())
            for ip in set(previous) | set(current):
                was_available = ip in previous and previous[ip].available
                is_available = ip in current and current[ip].available
                if was_available != is_available:
                    availability_changes += 1
                    changed_any.add(ip)
                if clustering is not None and ip in previous and ip in current:
                    before = clustering.cluster_of(ip, previous_rid)
                    after = clustering.cluster_of(ip, current_rid)
                    if before is not None and after is not None and before != after:
                        cluster_changes += 1
                        changed_any.add(ip)
            denominator_rel = len(union_ips) or 1
            series.append(
                {
                    "round_id": current_rid,
                    "responsiveness": responsive_changes / total * 100.0,
                    "availability": availability_changes / total * 100.0,
                    "cluster": cluster_changes / total * 100.0,
                    "overall": len(changed_any) / total * 100.0,
                    "responsiveness_relative":
                        responsive_changes / denominator_rel * 100.0,
                    "availability_relative":
                        availability_changes / denominator_rel * 100.0,
                    "cluster_relative": cluster_changes / denominator_rel * 100.0,
                    "overall_relative": len(changed_any) / denominator_rel * 100.0,
                }
            )
        return series

    def churn_rates(self) -> ChurnRates:
        series = self.churn_series()
        if not series:
            raise ValueError("need at least two rounds to measure churn")

        def mean(key: str) -> float:
            return sum(entry[key] for entry in series) / len(series)

        return ChurnRates(
            overall=mean("overall"),
            responsiveness=mean("responsiveness"),
            availability=mean("availability"),
            cluster=mean("cluster"),
            overall_relative=mean("overall_relative"),
            responsiveness_relative=mean("responsiveness_relative"),
            availability_relative=mean("availability_relative"),
            cluster_relative=mean("cluster_relative"),
        )

    # ------------------------------------------------------------------
    # cluster availability change (Figure 10)

    def cluster_change_series(self) -> list[float]:
        """Per round: % of all observed clusters whose availability
        (≥ 1 available IP) flipped relative to the previous round."""
        clustering = self._require_clustering()
        dataset = self.dataset
        availability: dict[int, set[int]] = {}
        for obs in dataset.observations():
            if not obs.available:
                continue
            cid = clustering.cluster_of(obs.ip, obs.round_id)
            if cid is not None:
                availability.setdefault(cid, set()).add(obs.round_id)
        total_clusters = len(clustering.clusters) or 1
        series: list[float] = []
        for previous_rid, current_rid in zip(dataset.round_ids,
                                             dataset.round_ids[1:]):
            changed = sum(
                1
                for rounds in availability.values()
                if (previous_rid in rounds) != (current_rid in rounds)
            )
            series.append(changed / total_clusters * 100.0)
        return series

    def _require_clustering(self) -> ClusteringResult:
        if self.clustering is None:
            raise ValueError("this analysis needs a ClusteringResult")
        return self.clustering
