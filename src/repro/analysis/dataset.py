"""In-memory view of a WhoWas measurement campaign.

Analyses repeatedly traverse every ``<IP, round>`` record, so this
module loads a :class:`~repro.core.store.StoreBackend` (any engine —
sqlite or columnar) once into compact :class:`Observation` rows
(dropping page bodies after link extraction) and indexes them by round
and by IP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.features import extract_domains, extract_links
from ..core.records import PageFeatures, RoundRecord
from ..core.store import RoundInfo, StoreBackend, open_store

__all__ = ["Observation", "Dataset"]


@dataclass(frozen=True)
class Observation:
    """One responsive ``<IP, round>`` pair, with extracted features."""

    ip: int
    round_id: int
    timestamp: int
    port_profile: str          # Table 3 label: "22-only", "80-only", ...
    available: bool
    status_code: int | None
    status_class: str          # "200", "4xx", "5xx", "other"
    content_type: str
    fetch_status: str
    features: PageFeatures | None
    links: tuple[str, ...] = ()
    ssh_banner: str | None = None
    #: Domain names appearing in the page body (vhost leakage, §4).
    domains: tuple[str, ...] = ()

    @property
    def has_page(self) -> bool:
        """Whether this observation carries clusterable page content."""
        return self.features is not None

    def key(self) -> tuple[int, int]:
        return (self.ip, self.round_id)


def _observe(record: RoundRecord) -> Observation:
    links: tuple[str, ...] = ()
    domains: tuple[str, ...] = ()
    if record.fetch.body:
        links = tuple(extract_links(record.fetch.body))
        domains = tuple(extract_domains(record.fetch.body))
    return Observation(
        ip=record.ip,
        round_id=record.round_id,
        timestamp=record.timestamp,
        port_profile=record.probe.port_profile(),
        available=record.available,
        status_code=record.fetch.status_code,
        status_class=record.fetch.status_class(),
        content_type=record.fetch.content_type,
        fetch_status=record.fetch.status.value,
        features=record.features,
        links=links,
        ssh_banner=record.ssh_banner,
        domains=domains,
    )


class Dataset:
    """All rounds of one campaign, indexed for analysis."""

    def __init__(self, rounds: list[RoundInfo],
                 observations: list[Observation]):
        self.rounds = sorted(rounds, key=lambda r: r.timestamp)
        self.round_ids = [r.round_id for r in self.rounds]
        self._timestamps = {r.round_id: r.timestamp for r in self.rounds}
        self.by_round: dict[int, list[Observation]] = {
            r.round_id: [] for r in self.rounds
        }
        self.by_ip: dict[int, list[Observation]] = {}
        for obs in observations:
            self.by_round[obs.round_id].append(obs)
            self.by_ip.setdefault(obs.ip, []).append(obs)
        for history in self.by_ip.values():
            history.sort(key=lambda o: o.timestamp)

    @classmethod
    def from_store(cls, store: StoreBackend) -> "Dataset":
        rounds = store.rounds()
        observations = [
            _observe(record)
            for info in rounds
            for record in store.records(info.round_id)
        ]
        return cls(rounds, observations)

    @classmethod
    def from_path(cls, path: str, *, backend: str | None = None) -> "Dataset":
        """Load a campaign straight from disk, auto-detecting the
        storage engine (or forcing one via *backend*)."""
        with open_store(path, backend=backend, readonly=True) as store:
            return cls.from_store(store)

    # ------------------------------------------------------------------

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    def timestamp_of(self, round_id: int) -> int:
        return self._timestamps[round_id]

    def observations(self) -> Iterator[Observation]:
        """Every observation, in round order."""
        for round_id in self.round_ids:
            yield from self.by_round[round_id]

    def responsive_ips(self, round_id: int) -> set[int]:
        return {o.ip for o in self.by_round[round_id]}

    def available_ips(self, round_id: int) -> set[int]:
        return {o.ip for o in self.by_round[round_id] if o.available}

    def pages(self, round_id: int) -> list[Observation]:
        """Observations of this round that carry page content."""
        return [o for o in self.by_round[round_id] if o.has_page]

    def history(self, ip: int) -> list[Observation]:
        """All observations of one IP, in chronological order."""
        return self.by_ip.get(ip, [])

    def targets_probed(self, round_id: int) -> int:
        for info in self.rounds:
            if info.round_id == round_id:
                return info.targets_probed
        raise KeyError(round_id)
