"""Analysis engines over WhoWas measurement data (§5, §8)."""

from .cartography import Cartographer, CartographyMap, VpcUsageAnalyzer
from .aggregates import AggregateReport, build_aggregate_report
from .census import (
    CensusReport,
    SoftwareCensus,
    SshCensus,
    SshCensusReport,
    server_family,
)
from .clustering import (
    Cluster,
    ClusteringResult,
    ClusterStats,
    WebpageClusterer,
)
from .crosscloud import (
    CrossCloudMatch,
    CrossCloudOverlap,
    find_cross_cloud_clusters,
)
from .dataset import Dataset, Observation
from .domains import CorrelationReport, DomainCorrelation, DomainCorrelator
from .dynamics import ChurnRates, DynamicsAnalyzer, SeriesSummary
from .evaluation import ClusteringScore, score_clustering
from .export import FigureExporter
from .gap_statistic import (
    cluster_by_threshold,
    cluster_profile,
    dispersion,
    gap_profile,
    gap_statistic,
    select_threshold,
)
from .lsh import SimhashIndex, band_layout
from .malicious import (
    MaliciousIp,
    SafeBrowsingAnalyzer,
    SafeBrowsingFindings,
    VirusTotalAnalyzer,
    VirusTotalFindings,
)
from .patterns import (
    PatternAnalyzer,
    PatternBreakdown,
    merge_repeats,
    paa_reduce,
    size_change_pattern,
    tendency_vector,
)
from .regions import RegionAnalyzer, RegionUsage
from .trackers import (
    GaAccountStats,
    TrackerAnalyzer,
    TrackerHits,
    analyze_ga_accounts,
)
from .uptime import ClusterUsage, UptimeAnalyzer

__all__ = [
    "Cartographer",
    "CartographyMap",
    "VpcUsageAnalyzer",
    "AggregateReport",
    "build_aggregate_report",
    "CensusReport",
    "SshCensus",
    "SshCensusReport",
    "SoftwareCensus",
    "server_family",
    "Cluster",
    "ClusteringResult",
    "ClusterStats",
    "WebpageClusterer",
    "CrossCloudMatch",
    "CrossCloudOverlap",
    "find_cross_cloud_clusters",
    "Dataset",
    "Observation",
    "ChurnRates",
    "ClusteringScore",
    "CorrelationReport",
    "DomainCorrelation",
    "DomainCorrelator",
    "score_clustering",
    "FigureExporter",
    "DynamicsAnalyzer",
    "SeriesSummary",
    "cluster_by_threshold",
    "cluster_profile",
    "dispersion",
    "gap_profile",
    "gap_statistic",
    "select_threshold",
    "SimhashIndex",
    "band_layout",
    "MaliciousIp",
    "SafeBrowsingAnalyzer",
    "SafeBrowsingFindings",
    "VirusTotalAnalyzer",
    "VirusTotalFindings",
    "PatternAnalyzer",
    "PatternBreakdown",
    "merge_repeats",
    "paa_reduce",
    "size_change_pattern",
    "tendency_vector",
    "RegionAnalyzer",
    "RegionUsage",
    "GaAccountStats",
    "TrackerAnalyzer",
    "TrackerHits",
    "analyze_ga_accounts",
    "ClusterUsage",
    "UptimeAnalyzer",
]
