"""Scoring clustering output against simulator ground truth.

The paper validated its clustering by manual inspection of samples (§5);
the simulator lets us do better, since it knows which service owned every
IP on every day.  Two standard measures:

* **purity** — fraction of clustered ``<IP, round>`` pairs whose cluster's
  majority owner matches their own owner (over-merging lowers it);
* **fragmentation** — mean number of final clusters each observed service
  is split across (over-splitting raises it; 1.0 is perfect).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..cloudsim.simulation import DeploymentLog
from .clustering import ClusteringResult
from .dataset import Dataset

__all__ = ["ClusteringScore", "score_clustering"]


@dataclass(frozen=True)
class ClusteringScore:
    """Quality of one clustering against ground truth."""

    purity: float
    fragmentation: float
    clusters: int
    services_observed: int

    def __str__(self) -> str:
        return (
            f"purity={self.purity:.3f} "
            f"fragmentation={self.fragmentation:.2f} "
            f"clusters={self.clusters} services={self.services_observed}"
        )


def score_clustering(
    dataset: Dataset,
    clustering: ClusteringResult,
    log: DeploymentLog,
) -> ClusteringScore:
    """Score final clusters against the deployment log's ownership."""
    owners_per_cluster: dict[int, Counter] = {}
    clusters_per_service: dict[int, set[int]] = {}
    for cluster_id, cluster in clustering.clusters.items():
        counts: Counter = Counter()
        for ip, round_id in cluster.members:
            owner = log.owner_on(ip, dataset.timestamp_of(round_id))
            if owner is None:
                continue
            counts[owner] += 1
            clusters_per_service.setdefault(owner, set()).add(cluster_id)
        if counts:
            owners_per_cluster[cluster_id] = counts

    total = sum(sum(c.values()) for c in owners_per_cluster.values())
    majority = sum(max(c.values()) for c in owners_per_cluster.values())
    purity = majority / total if total else 0.0
    fragmentation = (
        sum(len(v) for v in clusters_per_service.values())
        / len(clusters_per_service)
        if clusters_per_service
        else 0.0
    )
    return ClusteringScore(
        purity=purity,
        fragmentation=fragmentation,
        clusters=len(clustering.clusters),
        services_observed=len(clusters_per_service),
    )
