"""Region usage by clusters (§8.1 "Region and VPC usage").

The paper reports: 97.0% of all clusters use a single region; even among
the top 5% of clusters by size only 21.5% span several; and region usage
is sticky over time — 98.37% of EC2 clusters keep the same region set,
with ~0.7% adding one region and ~0.76% dropping one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .clustering import ClusteringResult
from .dataset import Dataset

__all__ = ["RegionUsage", "RegionAnalyzer"]


@dataclass(frozen=True)
class RegionUsage:
    """Aggregate region-usage statistics for one campaign."""

    single_region_share: float          # % of clusters in exactly 1 region
    top_multi_region_share: float       # % of top-5% clusters in >1 region
    #: region-set evolution between the first and second half of each
    #: cluster's life: net region-count change -> % of clusters
    change_shares: dict[int, float]

    def same_region_share(self) -> float:
        return self.change_shares.get(0, 0.0)


class RegionAnalyzer:
    """Computes §8.1's region-usage statistics."""

    def __init__(
        self,
        dataset: Dataset,
        clustering: ClusteringResult,
        region_of: Callable[[int], str],
        *,
        top_fraction: float = 0.05,
    ):
        self.dataset = dataset
        self.clustering = clustering
        self.region_of = region_of
        self.top_fraction = top_fraction

    def regions_of_cluster(self, cluster_id: int) -> set[str]:
        cluster = self.clustering.clusters[cluster_id]
        return {self.region_of(ip) for ip in cluster.ips()}

    def usage(self) -> RegionUsage:
        clusters = self.clustering.clusters
        if not clusters:
            return RegionUsage(0.0, 0.0, {})
        round_count = self.dataset.round_count
        region_counts: dict[int, int] = {}
        for cid in clusters:
            region_counts[cid] = len(self.regions_of_cluster(cid))
        single = sum(1 for count in region_counts.values() if count == 1)

        ranked = sorted(
            clusters.values(),
            key=lambda c: c.average_size(round_count),
            reverse=True,
        )
        top = ranked[: max(1, int(len(ranked) * self.top_fraction))]
        top_multi = sum(1 for c in top if region_counts[c.cluster_id] > 1)

        changes = self._region_changes()
        total = len(clusters)
        return RegionUsage(
            single_region_share=single / total * 100.0,
            top_multi_region_share=top_multi / len(top) * 100.0,
            change_shares={
                delta: count / total * 100.0
                for delta, count in changes.items()
            },
        )

    def _region_changes(self) -> dict[int, int]:
        """Net region-count change per cluster between the first and
        second half of its observed rounds."""
        order = {rid: index for index, rid in enumerate(self.dataset.round_ids)}
        changes: dict[int, int] = {}
        for cid, cluster in self.clustering.clusters.items():
            member_rounds = sorted(
                {rid for _, rid in cluster.members}, key=order.get
            )
            if len(member_rounds) < 2:
                changes[0] = changes.get(0, 0) + 1
                continue
            half = len(member_rounds) // 2
            early = set(member_rounds[:half]) if half else {member_rounds[0]}
            late = set(member_rounds[half:])
            early_regions = {
                self.region_of(ip) for ip, rid in cluster.members
                if rid in early
            }
            late_regions = {
                self.region_of(ip) for ip, rid in cluster.members
                if rid in late
            }
            delta = len(late_regions) - len(early_regions)
            changes[delta] = changes.get(delta, 0) + 1
        return changes
