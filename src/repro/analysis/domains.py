"""Active-DNS correlation of WhoWas data (§9 future work).

WhoWas fetches pages by bare IP, so virtual-host setups answer 404 or a
placeholder — but §4 observes that such pages often leak the intended
site's domain in their content.  This module closes the loop:

1. collect candidate domains from fetched page bodies,
2. interrogate DNS for each candidate (active measurement),
3. confirm ownership when a candidate resolves back onto the very IP
   that served the page.

Confirmed correlations recover ownership for IPs the clustering could
not label (error-page responses), and let analyses tie multiple IPs of
one domain together independent of content similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from .clustering import ClusteringResult
from .dataset import Dataset

__all__ = ["CorrelationReport", "DomainCorrelation", "DomainCorrelator"]

#: Resolver signature: domain -> list of A-record IPs (empty if NXDOMAIN).
Resolver = Callable[[str], list[int]]


@dataclass(frozen=True)
class DomainCorrelation:
    """One confirmed domain → IP-ownership correlation."""

    domain: str
    resolved_ips: tuple[int, ...]
    #: IPs whose fetched pages mentioned the domain *and* are among the
    #: domain's A records — confirmed ownership.
    confirmed_ips: tuple[int, ...]
    #: Confirmed IPs whose pages were error responses (the §4 vhost
    #: limitation) — ownership recovered despite unusable content.
    recovered_error_ips: tuple[int, ...]
    clusters: tuple[int, ...] = ()

    @property
    def confirmed(self) -> bool:
        return bool(self.confirmed_ips)


@dataclass
class CorrelationReport:
    """Outcome of one correlation sweep."""

    candidates: int
    resolved: int
    correlations: list[DomainCorrelation] = field(default_factory=list)

    def confirmed(self) -> list[DomainCorrelation]:
        return [c for c in self.correlations if c.confirmed]

    def recovered_error_ips(self) -> set[int]:
        recovered: set[int] = set()
        for correlation in self.correlations:
            recovered.update(correlation.recovered_error_ips)
        return recovered


class DomainCorrelator:
    """Runs the collect → resolve → confirm pipeline."""

    def __init__(
        self,
        dataset: Dataset,
        resolver: Resolver,
        clustering: ClusteringResult | None = None,
    ):
        self.dataset = dataset
        self.resolver = resolver
        self.clustering = clustering

    def candidate_domains(self) -> dict[str, set[int]]:
        """Domains seen in page bodies -> the IPs that mentioned them."""
        candidates: dict[str, set[int]] = {}
        for obs in self.dataset.observations():
            for domain in obs.domains:
                candidates.setdefault(domain, set()).add(obs.ip)
        return candidates

    def correlate(self, domains: Iterable[str] | None = None) -> CorrelationReport:
        """Resolve candidates and confirm which mentions are ownership."""
        candidates = self.candidate_domains()
        if domains is not None:
            requested = set(domains)
            candidates = {
                d: ips for d, ips in candidates.items() if d in requested
            }
        error_ips = self._error_page_ips()
        report = CorrelationReport(candidates=len(candidates), resolved=0)
        for domain, mentioning_ips in sorted(candidates.items()):
            resolved = self.resolver(domain)
            if not resolved:
                continue
            report.resolved += 1
            resolved_set = set(resolved)
            confirmed = tuple(sorted(mentioning_ips & resolved_set))
            recovered = tuple(ip for ip in confirmed if ip in error_ips)
            clusters: tuple[int, ...] = ()
            if self.clustering is not None and confirmed:
                found = {
                    cid
                    for ip in confirmed
                    for cid in self._clusters_of_ip(ip)
                }
                clusters = tuple(sorted(found))
            report.correlations.append(
                DomainCorrelation(
                    domain=domain,
                    resolved_ips=tuple(sorted(resolved_set)),
                    confirmed_ips=confirmed,
                    recovered_error_ips=recovered,
                    clusters=clusters,
                )
            )
        return report

    def _error_page_ips(self) -> set[int]:
        """IPs that only ever answered with error-class pages."""
        saw_ok: set[int] = set()
        saw_error: set[int] = set()
        for obs in self.dataset.observations():
            if obs.status_code is None:
                continue
            if obs.status_class == "200":
                saw_ok.add(obs.ip)
            else:
                saw_error.add(obs.ip)
        return saw_error - saw_ok

    def _clusters_of_ip(self, ip: int) -> set[int]:
        assert self.clustering is not None
        found: set[int] = set()
        for obs in self.dataset.history(ip):
            cid = self.clustering.cluster_of(ip, obs.round_id)
            if cid is not None:
                found.add(cid)
        return found
