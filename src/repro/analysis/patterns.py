"""Cluster size-change patterns via PAA and tendency vectors (§8.1).

For each cluster the paper builds the vector of per-round IP counts,
reduces it with piecewise aggregate approximation (PAA) over 7-day
windows (median per window, robust to outliers), converts the reduced
vector into a −1/0/+1 *tendency vector* (Algorithm 1), merges repeated
values, and tabulates the resulting size-change patterns (Table 11:
"0", "0,1,0", "0,-1,0", …).  Pattern-0 clusters split into *ephemeral*
(median footprint zero) and *relatively stable* groups.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from .clustering import ClusteringResult
from .dataset import Dataset

__all__ = [
    "paa_reduce",
    "tendency_vector",
    "merge_repeats",
    "size_change_pattern",
    "PatternBreakdown",
    "PatternAnalyzer",
]


def paa_reduce(values: list[float], timestamps: list[int],
               window_days: int = 7) -> list[float]:
    """Piecewise aggregate approximation with calendar windows.

    Because the scan interval is not constant (every 3 days, then
    daily), frames are 7-day windows of *timestamps*, not fixed-length
    chunks; each frame is represented by the median of its points.
    """
    if len(values) != len(timestamps):
        raise ValueError("values and timestamps must align")
    if not values:
        return []
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    start = timestamps[0]
    frames: dict[int, list[float]] = {}
    for value, timestamp in zip(values, timestamps):
        frames.setdefault((timestamp - start) // window_days, []).append(value)
    return [statistics.median(frames[index]) for index in sorted(frames)]


def tendency_vector(reduced: list[float]) -> list[int]:
    """Algorithm 1: pairwise comparison of consecutive PAA values."""
    tendency: list[int] = []
    for current, following in zip(reduced, reduced[1:]):
        if following > current:
            tendency.append(1)
        elif following == current:
            tendency.append(0)
        else:
            tendency.append(-1)
    return tendency


def merge_repeats(tendency: list[int]) -> tuple[int, ...]:
    """Collapse runs of repeated values: (0,1,1,0,-1,-1) -> (0,1,0,-1)."""
    merged: list[int] = []
    for value in tendency:
        if not merged or merged[-1] != value:
            merged.append(value)
    return tuple(merged)


def size_change_pattern(values: list[float], timestamps: list[int],
                        window_days: int = 7) -> tuple[int, ...]:
    """The full §8.1 pipeline for one cluster's size series."""
    reduced = paa_reduce(values, timestamps, window_days)
    if len(reduced) < 2:
        return (0,)
    return merge_repeats(tendency_vector(reduced)) or (0,)


def pattern_label(pattern: tuple[int, ...]) -> str:
    return ",".join(str(v) for v in pattern)


@dataclass(frozen=True)
class PatternBreakdown:
    """Table 11 plus the pattern-0 subgroups of §8.1."""

    counts: dict[str, int]              # pattern label -> cluster count
    total_clusters: int
    ephemeral: int                      # pattern 0 with zero median size
    stable: int                         # pattern 0 with non-zero median
    always_available_same_size: int     # stable, present in every round

    def top(self, n: int = 5) -> list[tuple[str, int, float]]:
        ranked = sorted(self.counts.items(), key=lambda kv: -kv[1])[:n]
        return [
            (label, count, count / self.total_clusters * 100.0)
            for label, count in ranked
        ]


class PatternAnalyzer:
    """Computes size-change patterns for every final cluster."""

    def __init__(self, dataset: Dataset, clustering: ClusteringResult,
                 window_days: int = 7):
        self.dataset = dataset
        self.clustering = clustering
        self.window_days = window_days

    def cluster_size_series(self, cluster_id: int) -> tuple[list[int], list[int]]:
        """(sizes, timestamps) across all rounds for one cluster."""
        cluster = self.clustering.clusters[cluster_id]
        timestamps = [
            self.dataset.timestamp_of(rid) for rid in self.dataset.round_ids
        ]
        return cluster.size_by_round(self.dataset.round_ids), timestamps

    def pattern_of(self, cluster_id: int) -> tuple[int, ...]:
        sizes, timestamps = self.cluster_size_series(cluster_id)
        return size_change_pattern(
            [float(v) for v in sizes], timestamps, self.window_days
        )

    def breakdown(self) -> PatternBreakdown:
        counts: Counter[str] = Counter()
        ephemeral = 0
        stable = 0
        always_same = 0
        round_count = self.dataset.round_count
        for cid in self.clustering.clusters:
            sizes, timestamps = self.cluster_size_series(cid)
            pattern = size_change_pattern(
                [float(v) for v in sizes], timestamps, self.window_days
            )
            counts[pattern_label(pattern)] += 1
            if pattern == (0,):
                if statistics.median(sizes) == 0:
                    ephemeral += 1
                else:
                    stable += 1
                    if all(size == sizes[0] for size in sizes) and sizes[0] > 0:
                        always_same += 1
        total = len(self.clustering.clusters)
        _ = round_count
        return PatternBreakdown(
            counts=dict(counts),
            total_clusters=total,
            ephemeral=ephemeral,
            stable=stable,
            always_available_same_size=always_same,
        )
