"""The WhoWas 2-level webpage clustering heuristic (§5).

Associates ``<IP, round>`` page observations that are likely the same
web application:

1. **First level** — exact grouping on five features: title, template,
   server, keywords, Google Analytics ID.
2. **Second level** — within each first-level cluster, single-linkage
   clustering of the 96-bit simhashes under a Hamming-distance threshold
   tuned with the gap statistic.
3. **Merge heuristic** — two clusters merge when the same IP carries, at
   successive times, records whose simhashes differ by at most 3 bits
   and that share at least one of the five features (catching ordinary
   page edits that would otherwise split a site across clusters).
4. **Cleaning** — clusters whose titles indicate fetch failures ("not
   found", "error", …) are removed, as are large clusters (> 20 IPs per
   day on average) of default server test pages.

The paper applied step 4 semi-manually; we encode its two published
rules as predicates.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..core import telemetry as _telemetry
from ..core.config import ClusteringConfig
from ..core.records import UNKNOWN, PageFeatures
from ..core.simhash import (
    hamming_distance,
    hamming_rows,
    numpy_available,
    pack_hashes,
)
from .dataset import Dataset, Observation
from .gap_statistic import cluster_by_threshold, select_threshold
from .lsh import DEFAULT_EXACT_CUTOFF

__all__ = ["Cluster", "ClusterStats", "ClusteringResult", "WebpageClusterer"]


@contextmanager
def _timed(histogram, phase: str):
    """Observe a block's wall-clock into a phase-labelled histogram."""
    begun = time.perf_counter()
    try:
        yield
    finally:
        histogram.labels(phase=phase).observe(time.perf_counter() - begun)

#: Titles indicating WhoWas failed to fetch useful content (§5).
_ERROR_TITLE_RE = re.compile(
    r"not\s*found|error|forbidden|bad\s*gateway|unavailable|"
    r"under\s*construction|maintenance",
    re.IGNORECASE,
)

#: Titles of default server test pages (§5's "welcome-apache" rule).
_DEFAULT_TITLE_RE = re.compile(
    r"welcome to nginx|apache.*default|default.*page|test page|"
    r"placeholder|^iis\d*$|it works",
    re.IGNORECASE,
)


@dataclass
class Cluster:
    """A final cluster: a set of ``<IP, round>`` members."""

    cluster_id: int
    level1_key: tuple[str, str, str, str, str]
    members: set[tuple[int, int]] = field(default_factory=set)

    @property
    def title(self) -> str:
        return self.level1_key[0]

    def ips(self) -> set[int]:
        return {ip for ip, _ in self.members}

    def rounds(self) -> set[int]:
        return {round_id for _, round_id in self.members}

    def ips_in_round(self, round_id: int) -> set[int]:
        return {ip for ip, rid in self.members if rid == round_id}

    def size_by_round(self, round_ids: list[int]) -> list[int]:
        counts = {rid: 0 for rid in round_ids}
        for _, rid in self.members:
            if rid in counts:
                counts[rid] += 1
        return [counts[rid] for rid in round_ids]

    def average_size(self, round_count: int) -> float:
        """Average number of IPs per round over the whole campaign."""
        if round_count == 0:
            return 0.0
        return len(self.members) / round_count


@dataclass(frozen=True)
class ClusterStats:
    """The clustering funnel of Table 6."""

    responsive_ips: int
    unique_simhashes: int
    top_level_clusters: int
    second_level_clusters: int
    merged_clusters: int
    final_clusters: int


class ClusteringResult:
    """Outcome of clustering one campaign's dataset."""

    def __init__(
        self,
        clusters: dict[int, Cluster],
        removed: dict[int, Cluster],
        assignment: dict[tuple[int, int], int],
        stats: ClusterStats,
        threshold: int,
    ):
        #: Final clusters (after merging and cleaning), by id.
        self.clusters = clusters
        #: Clusters dropped by the cleaning rules, by id.
        self.removed = removed
        self._assignment = assignment
        self.stats = stats
        #: The gap-statistic-selected Hamming threshold actually used.
        self.threshold = threshold

    def cluster_of(self, ip: int, round_id: int) -> int | None:
        """Final cluster id of an ``<IP, round>`` pair (None if the pair
        had no page content or its cluster was cleaned away)."""
        cluster_id = self._assignment.get((ip, round_id))
        if cluster_id is None or cluster_id not in self.clusters:
            return None
        return cluster_id

    def clusters_in_round(self, round_id: int) -> set[int]:
        return {
            cid for cid, cluster in self.clusters.items()
            if any(rid == round_id for _, rid in cluster.members)
        }

    def sizes(self, round_count: int) -> dict[int, float]:
        """Average cluster size per cluster id."""
        return {
            cid: cluster.average_size(round_count)
            for cid, cluster in self.clusters.items()
        }


class WebpageClusterer:
    """Runs the full §5 pipeline over a :class:`Dataset`."""

    #: Order of the five §5 features in a level-1 key.
    FEATURE_NAMES = ("title", "template", "server", "keywords",
                     "analytics_id")

    def __init__(
        self,
        *,
        level2_threshold: int | None = None,
        merge_threshold: int = 3,
        clean_min_daily_ips: float = 20.0,
        use_features: bool = True,
        use_merge: bool = True,
        threshold_seed: int = 0,
        feature_subset: tuple[str, ...] | None = None,
        exact: bool | None = None,
        exact_cutoff: int = DEFAULT_EXACT_CUTOFF,
    ):
        self.level2_threshold = level2_threshold
        self.merge_threshold = merge_threshold
        self.clean_min_daily_ips = clean_min_daily_ips
        #: Second-level candidate generation: ``True`` forces the
        #: brute-force all-pairs scan, ``False`` forces the banded LSH
        #: index (:mod:`repro.analysis.lsh`), ``None`` picks the index
        #: automatically above *exact_cutoff* distinct fingerprints.
        #: Both paths produce identical partitions — the index has exact
        #: recall at the clustering threshold.
        self.exact = exact
        self.exact_cutoff = exact_cutoff
        #: Ablation switch: False clusters on simhash alone (the authors'
        #: starting point before adding top-level features).
        self.use_features = use_features
        #: Ablation switch: False skips the post-clustering merge.
        self.use_merge = use_merge
        self.threshold_seed = threshold_seed
        #: §5 notes the interface makes it easy to cluster "with other
        #: goals in mind, such as simply finding related content
        #: (dropping the server feature) or only using Analytics IDs" —
        #: pass the features to keep, e.g. ("analytics_id",).
        if feature_subset is not None:
            unknown_names = set(feature_subset) - set(self.FEATURE_NAMES)
            if unknown_names:
                raise ValueError(
                    f"unknown features: {sorted(unknown_names)}; "
                    f"choose from {self.FEATURE_NAMES}"
                )
        self.feature_subset = feature_subset

    @classmethod
    def from_config(cls, config: ClusteringConfig,
                    **overrides) -> "WebpageClusterer":
        """Build a clusterer from a :class:`ClusteringConfig` (the knob
        set threaded through :class:`~repro.core.config.PlatformConfig`
        and the CLI)."""
        kwargs = dict(
            level2_threshold=config.level2_threshold,
            merge_threshold=config.merge_threshold,
            clean_min_daily_ips=config.clean_min_daily_ips,
            threshold_seed=config.threshold_seed,
            exact=config.exact,
            exact_cutoff=config.exact_cutoff,
        )
        kwargs.update(overrides)
        return cls(**kwargs)

    def _level1_key(self, features: PageFeatures) -> tuple:
        full = features.level1_key()
        if self.feature_subset is None:
            return full
        by_name = dict(zip(self.FEATURE_NAMES, full))
        return tuple(
            by_name[name] if name in self.feature_subset else "*"
            for name in self.FEATURE_NAMES
        )

    # ------------------------------------------------------------------

    def cluster(self, dataset: Dataset) -> ClusteringResult:
        tel = _telemetry.get()
        phase_seconds = tel.histogram(
            "repro_clustering_phase_seconds",
            "Wall-clock per clustering phase",
            labels=("phase",),
        )
        with tel.span("cluster:level1"), _timed(phase_seconds, "level1"):
            pages = [o for o in dataset.observations() if o.has_page]
            level1: dict[tuple, list[Observation]] = {}
            for obs in pages:
                features = obs.features
                assert features is not None
                key = self._level1_key(features) if self.use_features \
                    else ("*",) * 5
                level1.setdefault(key, []).append(obs)

        all_hashes = [o.features.simhash for o in pages]  # type: ignore[union-attr]
        threshold = self.level2_threshold
        if threshold is None:
            with tel.span("cluster:threshold"), \
                    _timed(phase_seconds, "threshold"):
                threshold = select_threshold(
                    all_hashes, seed=self.threshold_seed
                )

        # Second level: cluster distinct simhashes within each L1 group.
        assignment: dict[tuple[int, int], int] = {}
        cluster_key: dict[int, tuple] = {}
        next_id = 0
        with tel.span("cluster:level2"), _timed(phase_seconds, "level2"):
            for key, group in level1.items():
                distinct = sorted({o.features.simhash for o in group})  # type: ignore[union-attr]
                hash_to_cluster: dict[int, int] = {}
                for members in cluster_by_threshold(
                    distinct, threshold,
                    exact=self.exact, exact_cutoff=self.exact_cutoff,
                ):
                    for value in members:
                        hash_to_cluster[value] = next_id
                    cluster_key[next_id] = key
                    next_id += 1
                for obs in group:
                    assignment[obs.key()] = hash_to_cluster[obs.features.simhash]  # type: ignore[union-attr]
        second_level_count = next_id

        # Merge heuristic over per-IP temporal neighbours.
        parent = list(range(next_id))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        if self.use_merge:
            with tel.span("cluster:merge"), _timed(phase_seconds, "merge"):
                candidates: list[tuple[Observation, Observation]] = []
                for history in dataset.by_ip.values():
                    previous: Observation | None = None
                    for obs in history:
                        if not obs.has_page:
                            continue
                        if previous is not None:
                            candidates.append((previous, obs))
                        previous = obs
                for (earlier, later), distance in zip(
                    candidates, self._merge_distances(candidates)
                ):
                    if self._should_merge(earlier, later, assignment,
                                          distance=distance):
                        union(assignment[earlier.key()],
                              assignment[later.key()])

        # Relabel to merged roots.
        merged_assignment = {
            key: find(cid) for key, cid in assignment.items()
        }
        merged_ids = set(merged_assignment.values())

        clusters: dict[int, Cluster] = {}
        for key, cid in merged_assignment.items():
            cluster = clusters.get(cid)
            if cluster is None:
                cluster = Cluster(cid, cluster_key[cid])
                clusters[cid] = cluster
            cluster.members.add(key)

        with tel.span("cluster:clean"), _timed(phase_seconds, "clean"):
            removed = self._clean(clusters, dataset.round_count)

        stats = ClusterStats(
            responsive_ips=len(dataset.by_ip),
            unique_simhashes=len(set(all_hashes)),
            top_level_clusters=len(level1),
            second_level_clusters=second_level_count,
            merged_clusters=len(merged_ids),
            final_clusters=len(clusters),
        )
        return ClusteringResult(clusters, removed, merged_assignment, stats,
                                threshold)

    # ------------------------------------------------------------------

    def _merge_distances(
        self, candidates: list[tuple[Observation, Observation]]
    ) -> list[int]:
        """Simhash Hamming distance per successive-observation pair,
        batch-computed with the packed popcount kernel when numpy is
        available (bit-for-bit equal to the scalar fallback)."""
        if numpy_available() and len(candidates) >= 64:
            earlier = pack_hashes(
                [a.features.simhash for a, _ in candidates]  # type: ignore[union-attr]
            )
            later = pack_hashes(
                [b.features.simhash for _, b in candidates]  # type: ignore[union-attr]
            )
            return hamming_rows(earlier, later).tolist()
        return [
            hamming_distance(a.features.simhash, b.features.simhash)  # type: ignore[union-attr]
            for a, b in candidates
        ]

    def _should_merge(self, earlier: Observation, later: Observation,
                      assignment: dict[tuple[int, int], int],
                      *, distance: int | None = None) -> bool:
        """§5's merge conditions for two same-IP records at successive
        times.  All three must hold:

        1. the records sit in *distinct* second-level clusters (raw
           pre-merge assignment ids — earlier unions never change this
           test, so merge decisions are order-independent);
        2. their simhashes are within :attr:`merge_threshold` bits,
           **inclusive**: distance == ``merge_threshold`` (the paper's 3)
           merges, ``merge_threshold + 1`` does not;
        3. at least one of the five §5 features is equal on both sides
           *and* known — ``UNKNOWN`` (empty/missing) values never count
           as shared, so two featureless pages do not merge.

        *distance* optionally injects a precomputed Hamming distance
        (the vectorized batch path); it must equal
        ``hamming_distance(earlier.simhash, later.simhash)``.
        """
        if assignment[earlier.key()] == assignment[later.key()]:
            return False
        features_a = earlier.features
        features_b = later.features
        assert features_a is not None and features_b is not None
        if distance is None:
            distance = hamming_distance(features_a.simhash,
                                        features_b.simhash)
        if distance > self.merge_threshold:
            return False
        return any(
            a == b and a != UNKNOWN
            for a, b in zip(features_a.level1_key(), features_b.level1_key())
        )

    def _clean(self, clusters: dict[int, Cluster],
               round_count: int) -> dict[int, Cluster]:
        """Apply the two §5 cleaning rules; returns the removed clusters."""
        removed: dict[int, Cluster] = {}
        for cid in list(clusters):
            cluster = clusters[cid]
            title = cluster.title
            if title != UNKNOWN and _ERROR_TITLE_RE.search(title):
                removed[cid] = clusters.pop(cid)
                continue
            if (
                cluster.average_size(round_count) > self.clean_min_daily_ips
                and title != UNKNOWN
                and _DEFAULT_TITLE_RE.search(title)
            ):
                removed[cid] = clusters.pop(cid)
        return removed


def features_or_raise(obs: Observation) -> PageFeatures:
    if obs.features is None:
        raise ValueError("observation carries no page features")
    return obs.features
