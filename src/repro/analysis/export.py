"""Figure-data export: CSV series behind the paper's plots.

Downstream users typically want to replot Figures 8–19 with their own
tooling; this module writes the underlying series to plain CSV files,
one per figure, using only data already computed by the analyzers.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

from .cartography import CartographyMap, VpcUsageAnalyzer
from .clustering import ClusteringResult
from .dataset import Dataset
from .dynamics import DynamicsAnalyzer
from .uptime import UptimeAnalyzer

__all__ = ["FigureExporter"]


class FigureExporter:
    """Writes the per-figure series of one campaign to CSV files."""

    def __init__(
        self,
        dataset: Dataset,
        clustering: ClusteringResult,
        *,
        cartography: CartographyMap | None = None,
        kind_of: Callable[[int], str] | None = None,
    ):
        self.dataset = dataset
        self.clustering = clustering
        self.cartography = cartography
        self._kind_of = kind_of
        self.dynamics = DynamicsAnalyzer(dataset, clustering)

    def export_all(self, directory: str | Path) -> list[Path]:
        """Write every exportable figure; returns the files written."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = [
            self.export_fig08(directory / "fig08_timeseries.csv"),
            self.export_fig09(directory / "fig09_churn.csv"),
            self.export_fig10(directory / "fig10_cluster_change.csv"),
            self.export_fig12(directory / "fig12_ip_uptime_cdf.csv"),
        ]
        if self.cartography is not None:
            written.append(
                self.export_fig13(directory / "fig13_vpc_timeseries.csv")
            )
            written.append(
                self.export_fig14(directory / "fig14_vpc_clusters.csv")
            )
        return written

    # ------------------------------------------------------------------

    def export_fig08(self, path: str | Path) -> Path:
        """Round, day, responsive, available, clusters."""
        rows = zip(
            self.dataset.round_ids,
            self.dynamics.responsive_series(),
            self.dynamics.available_series(),
            self.dynamics.cluster_series(),
        )
        return _write(
            path,
            ["round", "day", "responsive_ips", "available_ips", "clusters"],
            [
                [index, self.dataset.timestamp_of(rid), resp, avail, clusters]
                for index, (rid, resp, avail, clusters) in enumerate(rows)
            ],
        )

    def export_fig09(self, path: str | Path) -> Path:
        """Per-round status-change rates (% of probed space)."""
        series = self.dynamics.churn_series()
        return _write(
            path,
            ["round", "responsiveness_pct", "availability_pct",
             "cluster_pct", "overall_pct"],
            [
                [index + 1, entry["responsiveness"], entry["availability"],
                 entry["cluster"], entry["overall"]]
                for index, entry in enumerate(series)
            ],
        )

    def export_fig10(self, path: str | Path) -> Path:
        series = self.dynamics.cluster_change_series()
        return _write(
            path,
            ["round", "cluster_change_pct"],
            [[index + 1, value] for index, value in enumerate(series)],
        )

    def export_fig12(self, path: str | Path) -> Path:
        """CDF points of average IP uptime (clusters of size >= 2)."""
        analyzer = UptimeAnalyzer(self.dataset, self.clustering)
        values = analyzer.average_ip_uptime_distribution(min_size=2.0)
        total = len(values) or 1
        return _write(
            path,
            ["avg_ip_uptime_pct", "cdf"],
            [
                [value, (index + 1) / total]
                for index, value in enumerate(values)
            ],
        )

    def export_fig13(self, path: str | Path) -> Path:
        assert self.cartography is not None
        analyzer = VpcUsageAnalyzer(
            self.dataset, self.clustering, self.cartography
        )
        series = analyzer.ip_series()
        return _write(
            path,
            ["round", "classic_responsive", "classic_available",
             "vpc_responsive", "vpc_available"],
            [
                [index] + [series[key][index] for key in (
                    "classic_responsive", "classic_available",
                    "vpc_responsive", "vpc_available",
                )]
                for index in range(len(self.dataset.round_ids))
            ],
        )

    def export_fig14(self, path: str | Path) -> Path:
        assert self.cartography is not None
        analyzer = VpcUsageAnalyzer(
            self.dataset, self.clustering, self.cartography
        )
        series = analyzer.cluster_kind_series()
        return _write(
            path,
            ["round", "classic_only", "vpc_only", "mixed"],
            [
                [index, series["classic-only"][index],
                 series["vpc-only"][index], series["mixed"][index]]
                for index in range(len(self.dataset.round_ids))
            ],
        )


def _write(path: str | Path, header: list[str], rows: list[list]) -> Path:
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path
