"""Third-party tracker analysis (§8.3, Table 20).

Trackers are found by searching page HTML for each tracker's
characteristic URL — the same fingerprint idea as the paper's MySQL
regular expressions (e.g. ``http://b.scorecardresearch.com`` inside a
script tag).  Searching the stored bodies directly in the measurement
database keeps the method faithful: this module queries the
:class:`~repro.core.store.MeasurementStore`, not the in-memory dataset
(whose observations drop bodies).

Google Analytics gets the extra account treatment of §8.3: IDs have the
form ``UA-<account>-<profile>``, so distinct profiles of one account
reveal multi-site owners.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..cloudsim.content import GA_TRACKER, TRACKER_CATALOG
from ..core.features import GA_ID_RE
from ..core.store import MeasurementStore
from .clustering import ClusteringResult

__all__ = ["TRACKER_FINGERPRINTS", "TrackerHits", "TrackerAnalyzer",
           "GaAccountStats", "analyze_ga_accounts"]

#: tracker name -> fingerprint URL (Table 20's tracker set).
TRACKER_FINGERPRINTS: dict[str, str] = {
    spec.name: spec.fingerprint_url for spec, _ in TRACKER_CATALOG
}
TRACKER_FINGERPRINTS[GA_TRACKER.name] = "google-analytics.com"


@dataclass(frozen=True)
class TrackerHits:
    """Tracker usage in one round (a Table 20 column pair)."""

    round_id: int
    ips_by_tracker: dict[str, set[int]]
    clusters_by_tracker: dict[str, set[int]]

    def table(self, top: int = 10) -> list[tuple[str, int, int]]:
        """(tracker, #IPs, #clusters) ranked by IP count."""
        rows = [
            (
                name,
                len(ips),
                len(self.clusters_by_tracker.get(name, ())),
            )
            for name, ips in self.ips_by_tracker.items()
        ]
        rows.sort(key=lambda row: -row[1])
        return rows[:top]

    def multi_tracker_shares(self) -> dict[int, float]:
        """Share of tracker-using IPs embedding 1, 2, 3+ trackers."""
        per_ip: Counter[int] = Counter()
        for ips in self.ips_by_tracker.values():
            for ip in ips:
                per_ip[ip] += 1
        total = len(per_ip)
        if total == 0:
            return {}
        counts: Counter[int] = Counter(per_ip.values())
        return {n: c / total * 100.0 for n, c in sorted(counts.items())}


class TrackerAnalyzer:
    """Searches stored page bodies for tracker fingerprints."""

    def __init__(self, store: MeasurementStore,
                 clustering: ClusteringResult | None = None):
        self.store = store
        self.clustering = clustering

    def scan_round(self, round_id: int) -> TrackerHits:
        """Tracker hits in one round (the paper reports the last)."""
        ips: dict[str, set[int]] = {name: set() for name in TRACKER_FINGERPRINTS}
        clusters: dict[str, set[int]] = {
            name: set() for name in TRACKER_FINGERPRINTS
        }
        for record in self.store.records(round_id):
            body = record.fetch.body
            if not body:
                continue
            for name, fingerprint in TRACKER_FINGERPRINTS.items():
                if fingerprint in body:
                    ips[name].add(record.ip)
                    if self.clustering is not None:
                        cid = self.clustering.cluster_of(record.ip, round_id)
                        if cid is not None:
                            clusters[name].add(cid)
        ips = {name: found for name, found in ips.items() if found}
        clusters = {name: found for name, found in clusters.items() if found}
        return TrackerHits(round_id, ips, clusters)

    def ga_ids(self) -> dict[str, set[int]]:
        """All Google Analytics IDs across the campaign -> IPs using them."""
        ids: dict[str, set[int]] = {}
        for info in self.store.rounds():
            for record in self.store.records(info.round_id):
                features = record.features
                if features is None or features.analytics_id in ("", "unknown"):
                    continue
                ids.setdefault(features.analytics_id, set()).add(record.ip)
        return ids


@dataclass(frozen=True)
class GaAccountStats:
    """§8.3's Google Analytics account/profile breakdown."""

    unique_ids: int
    unique_ips: int
    accounts: int
    profile_distribution: dict[int, float]   # #profiles -> % of accounts

    def single_profile_share(self) -> float:
        return self.profile_distribution.get(1, 0.0)


def analyze_ga_accounts(ids_to_ips: dict[str, set[int]]) -> GaAccountStats:
    """Split GA IDs into accounts and profiles (``UA-<acct>-<profile>``)."""
    accounts: dict[str, set[str]] = {}
    ips: set[int] = set()
    for ga_id, id_ips in ids_to_ips.items():
        match = GA_ID_RE.match(ga_id)
        if not match:
            continue
        account, profile = match.group(1), match.group(2)
        accounts.setdefault(account, set()).add(profile)
        ips |= id_ips
    profile_counts = Counter(len(profiles) for profiles in accounts.values())
    total_accounts = len(accounts) or 1
    return GaAccountStats(
        unique_ids=len(ids_to_ips),
        unique_ips=len(ips),
        accounts=len(accounts),
        profile_distribution={
            count: share / total_accounts * 100.0
            for count, share in sorted(profile_counts.items())
        },
    )
