"""Gap-statistic threshold tuning for simhash clustering (§5).

The paper picks the Hamming-distance threshold of the second-level
clustering "based on the gap statistic" (Tibshirani et al. 2001), the
standard device for estimating the number of clusters in unsupervised
clustering.  We adapt it to threshold selection: for each candidate
threshold *t*, single-linkage clustering of the fingerprints yields a
partition whose within-cluster dispersion ``W(t)`` is compared against
the expected dispersion of *reference* data (uniformly random
fingerprints, where every pairwise distance concentrates around
``HASH_BITS/2``).  The gap is ``E[log W_ref(t)] − log W(t)``; we choose
the smallest threshold whose gap is within one standard error of the
next threshold's gap (the "1-SE" rule of the original paper).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from ..core.simhash import HASH_BITS, hamming_distance

__all__ = ["cluster_by_threshold", "dispersion", "gap_statistic",
           "pairwise_distances", "select_threshold"]


def cluster_by_threshold(hashes: Sequence[int], threshold: int) -> list[list[int]]:
    """Single-linkage clusters: fingerprints are connected when their
    Hamming distance is ≤ *threshold*.  O(n²) pairwise — callers pass
    deduplicated fingerprint sets, which are small per level-1 group."""
    n = len(hashes)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            if hamming_distance(hashes[i], hashes[j]) <= threshold:
                root_i, root_j = find(i), find(j)
                if root_i != root_j:
                    parent[root_i] = root_j
    groups: dict[int, list[int]] = {}
    for index in range(n):
        groups.setdefault(find(index), []).append(hashes[index])
    return list(groups.values())


def dispersion(clusters: list[list[int]]) -> float:
    """Pooled within-cluster dispersion: sum over clusters of the mean
    pairwise Hamming distance times cluster size."""
    total = 0.0
    for members in clusters:
        size = len(members)
        if size < 2:
            continue
        pair_sum = 0
        for i in range(size):
            for j in range(i + 1, size):
                pair_sum += hamming_distance(members[i], members[j])
        total += pair_sum / size
    return total


def _reference_hashes(count: int, rng: random.Random) -> list[int]:
    return [rng.getrandbits(HASH_BITS) for _ in range(count)]


def gap_statistic(
    hashes: Sequence[int],
    threshold: int,
    *,
    references: int = 5,
    rng: random.Random | None = None,
) -> tuple[float, float]:
    """Gap statistic of the clustering induced by *threshold*.

    Following Tibshirani et al., the observed within-cluster dispersion
    is compared against reference datasets with no cluster structure
    (uniform fingerprints) partitioned into the *same cluster-size
    profile*, so both sides are evaluated at the same model complexity.
    A positive gap means the threshold recovered genuinely tighter
    groups than chance.
    """
    rng = rng or random.Random(0)
    clusters = cluster_by_threshold(list(hashes), threshold)
    observed = dispersion(clusters)
    log_observed = math.log(observed + 1.0)
    profile = [len(c) for c in clusters]
    log_refs = []
    for _ in range(references):
        ref = _reference_hashes(len(hashes), rng)
        start = 0
        partition = []
        for size in profile:
            partition.append(ref[start : start + size])
            start += size
        log_refs.append(math.log(dispersion(partition) + 1.0))
    mean_ref = sum(log_refs) / len(log_refs)
    variance = sum((v - mean_ref) ** 2 for v in log_refs) / len(log_refs)
    std_error = math.sqrt(variance) * math.sqrt(1.0 + 1.0 / len(log_refs))
    return mean_ref - log_observed, std_error


def pairwise_distances(hashes: Sequence[int]) -> list[int]:
    """All pairwise Hamming distances among the given fingerprints."""
    distances: list[int] = []
    n = len(hashes)
    for i in range(n):
        for j in range(i + 1, n):
            distances.append(hamming_distance(hashes[i], hashes[j]))
    return distances


def select_threshold(
    hashes: Sequence[int],
    *,
    sample_size: int = 400,
    seed: int = 0,
    default: int = 8,
    max_threshold: int = 30,
) -> int:
    """Tune the clustering threshold from the fingerprint population.

    Near-duplicate corpora have a bimodal pairwise-distance
    distribution: revisions of one page sit a few bits apart, unrelated
    pages sit near ``HASH_BITS/2``.  The informative threshold lies in
    the *separation band* — the widest empty stretch between the two
    modes.  This estimator finds that band (on a sample, for O(n²)
    affordability) and places the threshold a third of the way in, so
    modest revision outliers are still absorbed while chaining toward
    the unrelated mode stays far away.  This plays the role of the
    paper's gap-statistic-based tuning step: :func:`gap_statistic`
    itself is exposed for validating a chosen clustering.

    Falls back to *default* when the population is too small or shows
    no separation (fewer than 3 distinct fingerprints, or no empty band
    below *max_threshold*).
    """
    distinct = sorted(set(hashes))
    if len(distinct) < 3:
        return default
    rng = random.Random(seed)
    if len(distinct) > sample_size:
        distinct = rng.sample(distinct, sample_size)
    distances = sorted(set(pairwise_distances(distinct)))
    if not distances:
        return default
    # Find the widest empty band between consecutive observed distances,
    # considering only bands that start below max_threshold.
    best_low, best_width = None, 0
    previous = 0
    for value in distances:
        width = value - previous
        if width > best_width and previous <= max_threshold:
            best_low, best_width = previous, width
        previous = value
    if best_low is None or best_width < 3:
        return default
    return best_low + max(1, best_width // 3)
