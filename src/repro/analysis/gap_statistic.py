"""Gap-statistic threshold tuning for simhash clustering (§5).

The paper picks the Hamming-distance threshold of the second-level
clustering "based on the gap statistic" (Tibshirani et al. 2001), the
standard device for estimating the number of clusters in unsupervised
clustering.  We adapt it to threshold selection: for each candidate
threshold *t*, single-linkage clustering of the fingerprints yields a
partition whose within-cluster dispersion ``W(t)`` is compared against
the expected dispersion of *reference* data (uniformly random
fingerprints, where every pairwise distance concentrates around
``HASH_BITS/2``).  The gap is ``E[log W_ref(t)] − log W(t)``; we choose
the smallest threshold whose gap is within one standard error of the
next threshold's gap (the "1-SE" rule of the original paper).

Scale notes: :func:`cluster_by_threshold` dispatches between a
brute-force all-pairs path (vectorized with the packed popcount kernels
of :mod:`repro.core.simhash` when numpy is available) and the banded
LSH index of :mod:`repro.analysis.lsh`, which generates candidate pairs
in ~O(n) with exact recall at the requested threshold.  The two paths
produce identical partitions; ``exact=True`` forces brute force,
``exact=False`` forces the index, and the default picks by population
size.  :func:`cluster_profile` / :func:`gap_profile` evaluate *many*
candidate thresholds against one shared index instead of re-scanning
the population per threshold.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from ..core.simhash import (
    HASH_BITS,
    hamming_cross,
    hamming_distance,
    numpy_available,
    pack_hashes,
)
from .lsh import DEFAULT_EXACT_CUTOFF, SimhashIndex

__all__ = ["cluster_by_threshold", "cluster_profile", "dispersion",
           "gap_profile", "gap_statistic", "pairwise_distances",
           "select_threshold"]

#: Brute force below this size stays scalar: kernel/packing overhead
#: beats the win on tiny populations.
_VECTORIZE_MIN = 48


def _union_groups(hashes: Sequence[int],
                  pairs: Sequence[tuple[int, int]]) -> list[list[int]]:
    """Partition *hashes* by the connectivity in *pairs* (index pairs)."""
    n = len(hashes)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in pairs:
        root_i, root_j = find(i), find(j)
        if root_i != root_j:
            parent[root_i] = root_j
    groups: dict[int, list[int]] = {}
    for index in range(n):
        groups.setdefault(find(index), []).append(hashes[index])
    return list(groups.values())


def _cluster_exact_scalar(hashes: Sequence[int],
                          threshold: int) -> list[list[int]]:
    pairs = []
    n = len(hashes)
    for i in range(n):
        for j in range(i + 1, n):
            if hamming_distance(hashes[i], hashes[j]) <= threshold:
                pairs.append((i, j))
    return _union_groups(hashes, pairs)


def _cluster_exact_vectorized(hashes: Sequence[int],
                              threshold: int) -> list[list[int]]:
    """Blocked all-pairs comparison on the packed uint64 matrix."""
    import numpy as np

    packed = pack_hashes(hashes)
    n = len(hashes)
    row_block, col_block = 512, 8192
    pairs: list[tuple[int, int]] = []
    for i0 in range(0, n, row_block):
        i1 = min(i0 + row_block, n)
        rows = packed[i0:i1]
        for j0 in range(i0, n, col_block):
            j1 = min(j0 + col_block, n)
            distance = hamming_cross(rows, packed[j0:j1])
            hit_i, hit_j = np.nonzero(distance <= threshold)
            for di, dj in zip(hit_i.tolist(), hit_j.tolist()):
                gi, gj = i0 + di, j0 + dj
                if gi < gj:
                    pairs.append((gi, gj))
    return _union_groups(hashes, pairs)


def cluster_by_threshold(
    hashes: Sequence[int],
    threshold: int,
    *,
    exact: bool | None = None,
    exact_cutoff: int = DEFAULT_EXACT_CUTOFF,
) -> list[list[int]]:
    """Single-linkage clusters: fingerprints are connected when their
    Hamming distance is ≤ *threshold*.

    *exact* selects the candidate-generation strategy: ``True`` forces
    the all-pairs scan, ``False`` forces the banded LSH index, and
    ``None`` (default) uses the index only above *exact_cutoff*
    fingerprints.  All strategies return the same partition — the index
    has exact recall at ≤ *threshold* and confirms candidates with the
    same Hamming kernel.
    """
    n = len(hashes)
    if n == 0:
        return []
    if threshold >= HASH_BITS:
        # Every pair is within HASH_BITS bits: one cluster, any path.
        return [list(hashes)]
    use_index = exact is False or (exact is None and n > exact_cutoff)
    if use_index:
        return SimhashIndex(hashes, threshold).clusters()
    if numpy_available() and n >= _VECTORIZE_MIN:
        return _cluster_exact_vectorized(hashes, threshold)
    return _cluster_exact_scalar(hashes, threshold)


def cluster_profile(
    hashes: Sequence[int],
    thresholds: Sequence[int],
    *,
    exact: bool | None = None,
    exact_cutoff: int = DEFAULT_EXACT_CUTOFF,
) -> dict[int, list[list[int]]]:
    """Partitions at several thresholds from **one** candidate scan.

    A banded index built for ``max(thresholds)`` retains exact recall at
    every smaller threshold, so the matching pairs (with their exact
    distances) are computed once and each threshold only re-runs the
    cheap union-find over the filtered pairs — instead of re-scanning
    the population per candidate threshold.
    """
    distinct = sorted(set(thresholds))
    if not distinct:
        return {}
    n = len(hashes)
    top = distinct[-1]
    use_index = exact is False or (exact is None and n > exact_cutoff)
    if not use_index or top >= HASH_BITS or n == 0:
        return {
            t: cluster_by_threshold(hashes, t, exact=exact,
                                    exact_cutoff=exact_cutoff)
            for t in distinct
        }
    index = SimhashIndex(hashes, top)
    lefts, rights, distances = index.matching_pairs()
    return {
        t: _union_groups(
            hashes,
            [(i, j) for i, j, d in zip(lefts, rights, distances) if d <= t],
        )
        for t in distinct
    }


def dispersion(clusters: list[list[int]]) -> float:
    """Pooled within-cluster dispersion: sum over clusters of the mean
    pairwise Hamming distance times cluster size."""
    total = 0.0
    for members in clusters:
        size = len(members)
        if size < 2:
            continue
        total += _pair_distance_sum(members) / size
    return total


def _pair_distance_sum(members: Sequence[int]) -> int:
    """Sum of all pairwise Hamming distances within one cluster.

    Uses the per-bit identity Σ_pairs popcount(a⊕b) = Σ_bits c·(n−c)
    (c = how many members set that bit), which is O(n·HASH_BITS) instead
    of O(n²) and exact integer arithmetic either way.
    """
    size = len(members)
    if size < 2:
        return 0
    if numpy_available() and size >= _VECTORIZE_MIN:
        import numpy as np

        packed = pack_hashes(members)
        as_bytes = packed.view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1)
        ones = bits.sum(axis=0, dtype=np.int64)
        return int((ones * (size - ones)).sum())
    total = 0
    for bit in range(HASH_BITS):
        probe = 1 << bit
        ones = sum(1 for value in members if value & probe)
        total += ones * (size - ones)
    return total


def _reference_hashes(count: int, rng: random.Random) -> list[int]:
    return [rng.getrandbits(HASH_BITS) for _ in range(count)]


def gap_statistic(
    hashes: Sequence[int],
    threshold: int,
    *,
    references: int = 5,
    rng: random.Random | None = None,
    clusters: list[list[int]] | None = None,
) -> tuple[float, float]:
    """Gap statistic of the clustering induced by *threshold*.

    Following Tibshirani et al., the observed within-cluster dispersion
    is compared against reference datasets with no cluster structure
    (uniform fingerprints) partitioned into the *same cluster-size
    profile*, so both sides are evaluated at the same model complexity.
    A positive gap means the threshold recovered genuinely tighter
    groups than chance.  Pass *clusters* (e.g. from
    :func:`cluster_profile`) to skip re-clustering.
    """
    rng = rng or random.Random(0)
    if clusters is None:
        clusters = cluster_by_threshold(list(hashes), threshold)
    observed = dispersion(clusters)
    log_observed = math.log(observed + 1.0)
    profile = [len(c) for c in clusters]
    log_refs = []
    for _ in range(references):
        ref = _reference_hashes(len(hashes), rng)
        start = 0
        partition = []
        for size in profile:
            partition.append(ref[start : start + size])
            start += size
        log_refs.append(math.log(dispersion(partition) + 1.0))
    mean_ref = sum(log_refs) / len(log_refs)
    variance = sum((v - mean_ref) ** 2 for v in log_refs) / len(log_refs)
    std_error = math.sqrt(variance) * math.sqrt(1.0 + 1.0 / len(log_refs))
    return mean_ref - log_observed, std_error


def gap_profile(
    hashes: Sequence[int],
    thresholds: Sequence[int],
    *,
    references: int = 5,
    rng: random.Random | None = None,
    exact: bool | None = None,
) -> dict[int, tuple[float, float]]:
    """``{threshold: (gap, std_error)}`` over candidate thresholds.

    The threshold search that motivated the paper's gap-statistic step:
    all candidate partitions come from one shared banded index (see
    :func:`cluster_profile`), then each is scored by
    :func:`gap_statistic`.  Deterministic for a given *rng* seed and
    call order (thresholds are evaluated in ascending order).
    """
    rng = rng or random.Random(0)
    profiles = cluster_profile(hashes, thresholds, exact=exact)
    return {
        threshold: gap_statistic(
            hashes, threshold, references=references, rng=rng,
            clusters=profiles[threshold],
        )
        for threshold in sorted(profiles)
    }


def pairwise_distances(hashes: Sequence[int]) -> list[int]:
    """All pairwise Hamming distances among the given fingerprints,
    in ``(i, j), i < j`` row-major order."""
    n = len(hashes)
    if numpy_available() and n >= _VECTORIZE_MIN:
        import numpy as np

        packed = pack_hashes(hashes)
        distances: list[int] = []
        for i in range(n - 1):
            row = np.bitwise_count(packed[i] ^ packed[i + 1 :]).sum(
                axis=1, dtype=np.uint32
            )
            distances.extend(row.tolist())
        return distances
    distances = []
    for i in range(n):
        for j in range(i + 1, n):
            distances.append(hamming_distance(hashes[i], hashes[j]))
    return distances


def select_threshold(
    hashes: Sequence[int],
    *,
    sample_size: int = 400,
    seed: int = 0,
    default: int = 8,
    max_threshold: int = 30,
) -> int:
    """Tune the clustering threshold from the fingerprint population.

    Near-duplicate corpora have a bimodal pairwise-distance
    distribution: revisions of one page sit a few bits apart, unrelated
    pages sit near ``HASH_BITS/2``.  The informative threshold lies in
    the *separation band* — the widest empty stretch between the two
    modes.  This estimator finds that band (on a sample, for O(n²)
    affordability) and places the threshold a third of the way in, so
    modest revision outliers are still absorbed while chaining toward
    the unrelated mode stays far away.  This plays the role of the
    paper's gap-statistic-based tuning step: :func:`gap_statistic` /
    :func:`gap_profile` are exposed for validating a chosen clustering.

    Falls back to *default* when the population is too small or shows
    no separation (fewer than 3 distinct fingerprints, or no empty band
    below *max_threshold*).
    """
    distinct = sorted(set(hashes))
    if len(distinct) < 3:
        return default
    rng = random.Random(seed)
    if len(distinct) > sample_size:
        distinct = rng.sample(distinct, sample_size)
    distances = sorted(set(pairwise_distances(distinct)))
    if not distances:
        return default
    # Find the widest empty band between consecutive observed distances,
    # considering only bands that start below max_threshold.
    best_low, best_width = None, 0
    previous = 0
    for value in distances:
        width = value - previous
        if width > best_width and previous <= max_threshold:
            best_low, best_width = previous, width
        previous = value
    if best_low is None or best_width < 3:
        return default
    return best_low + max(1, best_width // 3)
