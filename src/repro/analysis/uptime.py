"""Cluster lifetime, uptime, and within-cluster IP churn (§8.1).

Implements the paper's stability measures:

* **cluster lifetime** — time between the first and last round the
  cluster was available;
* **cluster uptime** — fraction of its lifetime's rounds in which the
  cluster was available;
* **IP uptime** (per cluster) — rounds an IP was available and in the
  cluster, over the rounds the cluster was available; its mean across a
  cluster's IPs is the *average IP uptime*, the churn measure of
  Figure 12;
* the Table 15 columns for large clusters: per-round size statistics,
  max IP departure, stable-IP share, regions used and VPC usage.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable

from .clustering import Cluster, ClusteringResult
from .dataset import Dataset

__all__ = ["ClusterUsage", "UptimeAnalyzer"]


@dataclass(frozen=True)
class ClusterUsage:
    """The Table 15 row for one cluster."""

    cluster_id: int
    title: str
    total_ips: int
    mean_size: float
    median_size: float
    min_size: int
    max_size: int
    avg_ip_uptime: float        # percent
    max_ip_departure: float     # percent
    stable_ip_share: float      # percent
    lifetime_rounds: int
    uptime: float               # percent
    regions_used: int
    mean_vpc_ips: float


class UptimeAnalyzer:
    """Uptime/churn measures for every final cluster."""

    def __init__(
        self,
        dataset: Dataset,
        clustering: ClusteringResult,
        *,
        region_of: Callable[[int], str] | None = None,
        kind_of: Callable[[int], str] | None = None,
    ):
        self.dataset = dataset
        self.clustering = clustering
        self._region_of = region_of
        self._kind_of = kind_of
        self._available: dict[tuple[int, int], bool] = {
            (o.ip, o.round_id): o.available for o in dataset.observations()
        }

    # ------------------------------------------------------------------
    # availability per cluster

    def available_rounds(self, cluster: Cluster) -> list[int]:
        """Rounds (ids, in order) in which ≥ 1 member IP was available."""
        rounds = {
            rid
            for ip, rid in cluster.members
            if self._available.get((ip, rid), False)
        }
        return [rid for rid in self.dataset.round_ids if rid in rounds]

    def lifetime_window(self, cluster: Cluster) -> list[int]:
        """All campaign rounds between first and last availability."""
        available = self.available_rounds(cluster)
        if not available:
            return []
        order = {rid: i for i, rid in enumerate(self.dataset.round_ids)}
        first, last = order[available[0]], order[available[-1]]
        return self.dataset.round_ids[first : last + 1]

    def cluster_uptime(self, cluster: Cluster) -> float:
        """Percent of lifetime rounds in which the cluster was available."""
        window = self.lifetime_window(cluster)
        if not window:
            return 0.0
        available = set(self.available_rounds(cluster))
        return len(available) / len(window) * 100.0

    # ------------------------------------------------------------------
    # IP uptime (Figure 12)

    def ip_uptimes(self, cluster: Cluster) -> dict[int, float]:
        """Per-IP uptime (%) relative to the cluster's available rounds."""
        available_rounds = set(self.available_rounds(cluster))
        if not available_rounds:
            return {}
        per_ip: dict[int, int] = {}
        for ip, rid in cluster.members:
            if rid in available_rounds and self._available.get((ip, rid), False):
                per_ip[ip] = per_ip.get(ip, 0) + 1
        denominator = len(available_rounds)
        return {
            ip: count / denominator * 100.0 for ip, count in per_ip.items()
        }

    def average_ip_uptime(self, cluster: Cluster) -> float:
        uptimes = self.ip_uptimes(cluster)
        if not uptimes:
            return 0.0
        return sum(uptimes.values()) / len(uptimes)

    def average_ip_uptime_distribution(
        self, min_size: float = 2.0
    ) -> list[float]:
        """Average IP uptimes of all clusters with average size ≥
        *min_size* — the CDF population of Figure 12."""
        round_count = self.dataset.round_count
        values = []
        for cluster in self.clustering.clusters.values():
            if cluster.average_size(round_count) >= min_size:
                values.append(self.average_ip_uptime(cluster))
        return sorted(values)

    # ------------------------------------------------------------------
    # Table 15

    def usage_row(self, cluster: Cluster) -> ClusterUsage:
        round_ids = self.dataset.round_ids
        sizes = cluster.size_by_round(round_ids)
        present_sizes = [s for s in sizes] or [0]
        per_round_ips = {
            rid: cluster.ips_in_round(rid) for rid in round_ids
        }
        max_departure = 0.0
        for previous_rid, current_rid in zip(round_ids, round_ids[1:]):
            current = per_round_ips[current_rid]
            if not current:
                continue
            left = per_round_ips[previous_rid] - current
            max_departure = max(max_departure, len(left) / len(current) * 100.0)
        all_ips = cluster.ips()
        rounds_with_members = [rid for rid in round_ids if per_round_ips[rid]]
        stable = 0
        if rounds_with_members:
            stable = sum(
                1
                for ip in all_ips
                if all(ip in per_round_ips[rid] for rid in rounds_with_members)
            )
        regions = set()
        vpc_sizes = []
        if self._region_of is not None:
            regions = {self._region_of(ip) for ip in all_ips}
        if self._kind_of is not None:
            for rid in round_ids:
                vpc_sizes.append(
                    sum(1 for ip in per_round_ips[rid]
                        if self._kind_of(ip) == "vpc")
                )
        return ClusterUsage(
            cluster_id=cluster.cluster_id,
            title=cluster.title,
            total_ips=len(all_ips),
            mean_size=sum(present_sizes) / len(present_sizes),
            median_size=statistics.median(present_sizes),
            min_size=min(present_sizes),
            max_size=max(present_sizes),
            avg_ip_uptime=self.average_ip_uptime(cluster),
            max_ip_departure=max_departure,
            stable_ip_share=(stable / len(all_ips) * 100.0) if all_ips else 0.0,
            lifetime_rounds=len(self.lifetime_window(cluster)),
            uptime=self.cluster_uptime(cluster),
            regions_used=len(regions),
            mean_vpc_ips=(sum(vpc_sizes) / len(vpc_sizes)) if vpc_sizes else 0.0,
        )

    def top_clusters(self, count: int = 10) -> list[ClusterUsage]:
        """The *count* largest clusters by average size (Table 15)."""
        round_count = self.dataset.round_count
        ranked = sorted(
            self.clustering.clusters.values(),
            key=lambda c: c.average_size(round_count),
            reverse=True,
        )
        return [self.usage_row(cluster) for cluster in ranked[:count]]
