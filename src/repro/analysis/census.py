"""The web software ecosystem census (§8.3).

From the per-page features WhoWas stores — the ``Server`` header, the
``x-powered-by`` header and the generator template — this module
tabulates, as averages over all measurement rounds:

* web server families and exact version shares (Apache 2.2.* dominance,
  the rare 2.4.7 adopters, …),
* backend technologies (PHP / ASP.NET / Phusion Passenger) and PHP
  version staleness,
* website templates (WordPress / Joomla! / Drupal) and the share of
  WordPress sites below 3.6 (known XSS vulnerabilities),
* servers appearing on SERT's most-vulnerable list.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass

from ..cloudsim.software import VULNERABLE_SERVERS, VULNERABLE_WORDPRESS_MAX
from ..core.records import UNKNOWN
from .dataset import Dataset

__all__ = ["server_family", "CensusReport", "SoftwareCensus",
           "SshCensusReport", "SshCensus"]

_FAMILY_PREFIXES = (
    ("apache", "Apache"),
    ("nginx", "nginx"),
    ("microsoft-iis", "Microsoft-IIS"),
    ("mochiweb", "MochiWeb"),
    ("lighttpd", "lighttpd"),
    ("jetty", "Jetty"),
    ("gunicorn", "gunicorn"),
    ("litespeed", "LiteSpeed"),
    ("cowboy", "Cowboy"),
)

_WORDPRESS_VERSION_RE = re.compile(r"wordpress\s+(\d+)\.(\d+)", re.IGNORECASE)

_PHP_RE = re.compile(r"php/(\d+\.\d+\.\d+)", re.IGNORECASE)


def server_family(server: str) -> str:
    """Normalise a Server header to its product family."""
    lowered = server.lower()
    for prefix, family in _FAMILY_PREFIXES:
        if lowered.startswith(prefix):
            return family
    return server.split("/")[0] if server else UNKNOWN


@dataclass(frozen=True)
class CensusReport:
    """All §8.3 tabulations for one campaign."""

    #: Fraction of available IPs whose server software was identified.
    server_identified_share: float
    server_family_shares: dict[str, float]      # % of identified servers
    server_version_counts: Counter
    backend_identified_share: float              # % of identified servers
    backend_shares: dict[str, float]             # % of identified backends
    php_version_shares: dict[str, float]
    template_shares: dict[str, float]            # % of identified templates
    template_ip_average: float                   # avg #IPs with a template
    wordpress_version_counts: Counter
    wordpress_vulnerable_share: float            # % of WP sites < 3.6
    vulnerable_server_ips: Counter               # server string -> #IPs

    def top_servers(self, count: int = 10) -> list[tuple[str, int]]:
        return self.server_version_counts.most_common(count)


class SoftwareCensus:
    """Computes the §8.3 census over a campaign dataset."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    def report(self) -> CensusReport:
        available = 0
        identified = 0
        families: Counter[str] = Counter()
        versions: Counter[str] = Counter()
        backends: Counter[str] = Counter()
        backend_seen = 0
        php_versions: Counter[str] = Counter()
        templates: Counter[str] = Counter()
        template_rounds: Counter[int] = Counter()
        wordpress: Counter[str] = Counter()
        wordpress_vulnerable = 0
        vulnerable: Counter[str] = Counter()

        for obs in self.dataset.observations():
            if not obs.available:
                continue
            available += 1
            features = obs.features
            if features is None:
                continue
            server = features.server
            if server != UNKNOWN:
                identified += 1
                families[server_family(server)] += 1
                versions[server] += 1
                if server in VULNERABLE_SERVERS:
                    vulnerable[server] += 1
            backend = features.powered_by
            if backend != UNKNOWN:
                backend_seen += 1
                php = _PHP_RE.match(backend)
                if php:
                    backends["PHP"] += 1
                    php_versions[f"PHP/{php.group(1)}"] += 1
                else:
                    backends[backend] += 1
            template = features.template
            if template != UNKNOWN:
                template_rounds[obs.round_id] += 1
                wp = _WORDPRESS_VERSION_RE.match(template)
                if wp:
                    templates["WordPress"] += 1
                    wordpress[template] += 1
                    version = (int(wp.group(1)), int(wp.group(2)))
                    if version < VULNERABLE_WORDPRESS_MAX:
                        wordpress_vulnerable += 1
                else:
                    templates[template.split()[0]] += 1

        round_count = self.dataset.round_count or 1
        return CensusReport(
            server_identified_share=_pct(identified, available),
            server_family_shares=_shares(families),
            server_version_counts=versions,
            backend_identified_share=_pct(backend_seen, identified),
            backend_shares=_shares(backends),
            php_version_shares=_shares(php_versions),
            template_shares=_shares(templates),
            template_ip_average=sum(template_rounds.values()) / round_count,
            wordpress_version_counts=wordpress,
            wordpress_vulnerable_share=_pct(
                wordpress_vulnerable, sum(wordpress.values())
            ),
            vulnerable_server_ips=vulnerable,
        )


def _pct(part: int, whole: int) -> float:
    return part / whole * 100.0 if whole else 0.0


def _shares(counter: Counter) -> dict[str, float]:
    total = sum(counter.values())
    if total == 0:
        return {}
    return {
        name: count / total * 100.0
        for name, count in counter.most_common()
    }


#: OpenSSH releases at or below this version were end-of-life during the
#: measurement window, mirroring the web-version staleness analysis.
_STALE_OPENSSH_MAX = (5, 9)

_SSH_VERSION_RE = re.compile(
    r"SSH-[\d.]+-(?P<product>[A-Za-z]+)[_/ ]?(?P<major>\d+)?(?:\.(?P<minor>\d+))?"
)


@dataclass(frozen=True)
class SshCensusReport:
    """The non-web-services census (the paper's §9 extension)."""

    #: Fraction of SSH-exposing responsive IPs whose banner was read.
    banner_identified_share: float
    banner_counts: Counter
    product_shares: dict[str, float]
    stale_openssh_share: float      # % of OpenSSH banners at <= 5.9

    def top_banners(self, count: int = 10) -> list[tuple[str, int]]:
        return self.banner_counts.most_common(count)


class SshCensus:
    """Tabulates SSH banners across a campaign — which sshd products
    and versions cloud instances expose on port 22."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    def report(self) -> SshCensusReport:
        exposing = 0
        banners: Counter[str] = Counter()
        products: Counter[str] = Counter()
        openssh_total = 0
        openssh_stale = 0
        for obs in self.dataset.observations():
            # The scanner probes port 22 only when both web probes fail
            # (§4), so SSH exposure is only *known* for 22-only IPs.
            if obs.port_profile != "22-only":
                continue
            exposing += 1
            banner = obs.ssh_banner
            if not banner:
                continue
            banners[banner] += 1
            match = _SSH_VERSION_RE.match(banner)
            if not match:
                products["(other)"] += 1
                continue
            product = match.group("product")
            products[product] += 1
            if product == "OpenSSH" and match.group("major"):
                openssh_total += 1
                version = (
                    int(match.group("major")),
                    int(match.group("minor") or 0),
                )
                if version <= _STALE_OPENSSH_MAX:
                    openssh_stale += 1
        return SshCensusReport(
            banner_identified_share=_pct(sum(banners.values()), exposing),
            banner_counts=banners,
            product_shares=_shares(products),
            stale_openssh_share=_pct(openssh_stale, openssh_total),
        )
