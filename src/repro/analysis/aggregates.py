"""Privacy-preserving aggregate reports (§7).

The paper withholds its raw dataset — some tenants inadvertently
exposed content — and suggests a public interface "only providing
aggregate statistics".  This module renders exactly that: a summary of
a campaign that contains **no IP addresses, no URLs, no page content,
and no identifiers** (Google Analytics IDs are counted, never listed),
with small categories suppressed below a k-anonymity floor.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from ..core.records import UNKNOWN
from .census import server_family
from .clustering import ClusteringResult
from .dataset import Dataset
from .dynamics import DynamicsAnalyzer

__all__ = ["AggregateReport", "build_aggregate_report"]

#: Categories observed on fewer than this many IPs are folded into
#: "(suppressed)" so rare configurations cannot identify a tenant.
K_ANONYMITY_FLOOR = 5


@dataclass(frozen=True)
class AggregateReport:
    """Shareable aggregate view of one measurement campaign."""

    cloud: str
    rounds: int
    space_size: int
    responsive_share_avg: float          # % of the probed space
    available_share_avg: float
    growth_responsive_pct: float
    port_profile_shares: dict[str, float]
    status_class_shares: dict[str, float]
    content_type_shares: dict[str, float]
    server_family_shares: dict[str, float]
    cluster_size_histogram: dict[str, int]
    churn_overall_pct: float | None = None
    extra: dict[str, float] = field(default_factory=dict)

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "cloud": self.cloud,
            "rounds": self.rounds,
            "space_size": self.space_size,
            "responsive_share_avg": round(self.responsive_share_avg, 2),
            "available_share_avg": round(self.available_share_avg, 2),
            "growth_responsive_pct": round(self.growth_responsive_pct, 2),
            "port_profile_shares": _rounded(self.port_profile_shares),
            "status_class_shares": _rounded(self.status_class_shares),
            "content_type_shares": _rounded(self.content_type_shares),
            "server_family_shares": _rounded(self.server_family_shares),
            "cluster_size_histogram": self.cluster_size_histogram,
            "churn_overall_pct": (
                round(self.churn_overall_pct, 2)
                if self.churn_overall_pct is not None else None
            ),
            "extra": _rounded(self.extra),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def assert_private(self) -> None:
        """Self-check: no dotted quads, URLs, or GA IDs in the output."""
        import re

        text = self.to_json()
        assert not re.search(r"\b\d{1,3}(\.\d{1,3}){3}\b", text), \
            "aggregate report leaks an IP address"
        assert "http://" not in text and "https://" not in text, \
            "aggregate report leaks a URL"
        assert not re.search(r"\bUA-\d", text), \
            "aggregate report leaks a Google Analytics ID"


def build_aggregate_report(
    cloud: str,
    dataset: Dataset,
    clustering: ClusteringResult | None = None,
) -> AggregateReport:
    """Aggregate one campaign into a shareable report."""
    dynamics = DynamicsAnalyzer(dataset, clustering)
    responsive = dynamics.responsive_series()
    available = dynamics.available_series()
    space = dynamics.space_size()
    summary = dynamics.usage_summary()

    families: Counter[str] = Counter()
    for obs in dataset.observations():
        if obs.features is not None and obs.features.server != UNKNOWN:
            families[server_family(obs.features.server)] += 1
    family_shares = _suppressed_shares(families)

    histogram: dict[str, int] = {}
    churn = None
    if clustering is not None:
        buckets: Counter[str] = Counter()
        for size in clustering.sizes(dataset.round_count).values():
            if size <= 1:
                buckets["1"] += 1
            elif size <= 20:
                buckets["2-20"] += 1
            elif size <= 50:
                buckets["21-50"] += 1
            else:
                buckets[">50"] += 1
        histogram = dict(buckets)
        if dataset.round_count >= 2:
            churn = dynamics.churn_rates().overall

    return AggregateReport(
        cloud=cloud,
        rounds=dataset.round_count,
        space_size=space,
        responsive_share_avg=sum(responsive) / len(responsive) / space * 100,
        available_share_avg=sum(available) / len(available) / space * 100,
        growth_responsive_pct=summary["responsive"].growth_pct,
        port_profile_shares=dynamics.port_profile_table(),
        status_class_shares=dynamics.status_code_table(),
        content_type_shares=dict(dynamics.content_type_table()),
        server_family_shares=family_shares,
        cluster_size_histogram=histogram,
        churn_overall_pct=churn,
    )


def _rounded(mapping: dict[str, float]) -> dict[str, float]:
    return {key: round(value, 2) for key, value in mapping.items()}


def _suppressed_shares(counter: Counter) -> dict[str, float]:
    """Shares with k-anonymity suppression of rare categories."""
    total = sum(counter.values())
    if total == 0:
        return {}
    shares: dict[str, float] = {}
    suppressed = 0
    for name, count in counter.most_common():
        if count < K_ANONYMITY_FLOOR:
            suppressed += count
        else:
            shares[name] = count / total * 100.0
    if suppressed:
        shares["(suppressed)"] = suppressed / total * 100.0
    return shares
