"""Campaign driver: run WhoWas against a scenario on its scan calendar.

Replays §6's methodology — advance the simulated cloud day by day,
running one complete WhoWas round (probe → fetch → features → store) on
each scheduled scan day — and hands back everything the analyses need.

Campaign progress is persisted in the store's ``campaign_meta`` table
(scenario name, RNG seed, scan calendar, completed days), and each
round checkpoints shard by shard, so a campaign killed mid-round is
resumable: :meth:`Campaign.resume` (or ``repro resume <db>``) rebuilds
the scenario, skips the days already recorded, finishes any partial
round the crash left ``in_progress``, and continues the calendar.  The
simulated cloud is a pure function of its seed and the day reached, so
a resumed campaign produces record-for-record the same database an
uninterrupted run would have.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from ..analysis.clustering import ClusteringResult, WebpageClusterer
from ..analysis.dataset import Dataset
from ..core.config import FetchConfig, PlatformConfig, ScanConfig
from ..core.platform import RoundInterrupted, RoundSummary, WhoWas
from ..core.store import MeasurementStore
from .scenario import Scenario, azure_scenario, ec2_scenario

__all__ = [
    "simulation_config",
    "build_sim_scenario",
    "SimTransportFactory",
    "CampaignResult",
    "CampaignInterrupted",
    "Campaign",
]


def build_sim_scenario(params: dict) -> Scenario:
    """Assemble the (possibly chaos-wrapped) scenario a parameter dict
    describes — shared by ``repro simulate``, ``repro resume``, and
    every spawned partition worker, so all of them see the
    byte-identical cloud."""
    builder = ec2_scenario if params["cloud"] == "ec2" else azure_scenario
    kwargs = {"total_ips": params["ips"], "seed": params["seed"]}
    if params.get("days") is not None:
        kwargs["duration_days"] = params["days"]
    scenario = builder(**kwargs)
    chaos_rate = params.get("chaos_rate", 0.0)
    if chaos_rate > 0:
        from ..core import FaultyTransport, chaos_plan, hostile_plan

        seed = params.get("chaos_seed", 0)
        plan = chaos_plan(seed, rate=chaos_rate)
        if params.get("chaos_hostile"):
            plan = hostile_plan(seed, rate=chaos_rate)
        scenario.transport = FaultyTransport(scenario.transport, plan)
    return scenario


@dataclass(frozen=True)
class SimTransportFactory:
    """Picklable ``factory(timestamp) -> Transport`` over the simulated
    cloud: a spawned partition worker calls it to rebuild the scenario
    from parameters alone and advance it to the round's day.  The
    simulator is a pure function of ``(seed, day)``, so the worker's
    transport answers byte-for-byte like the coordinator's."""

    params: dict

    def __call__(self, timestamp: int):
        scenario = build_sim_scenario(dict(self.params))
        scenario.simulation.advance_to(timestamp)
        return scenario.transport


class CampaignInterrupted(Exception):
    """A campaign stopped cooperatively; everything up to (and the
    committed shards of) *day* is checkpointed in the store."""

    def __init__(self, scenario_name: str, day: int, round_id: int):
        self.scenario_name = scenario_name
        self.day = day
        self.round_id = round_id
        super().__init__(
            f"campaign {scenario_name!r} interrupted; resumable at day {day}"
        )


def simulation_config(blacklist: frozenset[int] = frozenset()) -> PlatformConfig:
    """Platform config tuned for simulator speed: the polite-rate token
    bucket is pointless against an in-process simulator, so the rate is
    effectively unlimited; probe semantics (timeouts, no retries) keep
    the paper's defaults."""
    return PlatformConfig(
        scan=ScanConfig(probes_per_second=1e12, concurrency=2048),
        fetch=FetchConfig(workers=2048),
        blacklist=blacklist,
        grab_ssh_banners=True,
    )


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    scenario: Scenario
    store: MeasurementStore
    summaries: list[RoundSummary]
    _dataset: Dataset | None = field(default=None, repr=False)
    _clustering: ClusteringResult | None = field(default=None, repr=False)

    @property
    def dataset(self) -> Dataset:
        """The in-memory dataset (loaded lazily, cached)."""
        if self._dataset is None:
            self._dataset = Dataset.from_store(self.store)
        return self._dataset

    def clustering(self, **kwargs) -> ClusteringResult:
        """Run (or reuse) the §5 clustering over the campaign."""
        if kwargs:
            return WebpageClusterer(**kwargs).cluster(self.dataset)
        if self._clustering is None:
            self._clustering = WebpageClusterer().cluster(self.dataset)
        return self._clustering

    @property
    def round_count(self) -> int:
        return len(self.summaries)


class Campaign:
    """Runs a full measurement campaign over one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        store: MeasurementStore | None = None,
        config: PlatformConfig | None = None,
        *,
        transport_factory=None,
        proc_chaos=None,
    ):
        self.scenario = scenario
        self.store = store or MeasurementStore()
        self.platform = WhoWas(
            scenario.transport, self.store, config or simulation_config(),
            transport_factory=transport_factory, proc_chaos=proc_chaos,
        )

    # ------------------------------------------------------------------
    # progress metadata

    def _completed_days(self) -> list[int]:
        raw = self.store.get_meta("completed_days")
        return json.loads(raw) if raw else []

    def _write_progress(self, days: list[int], completed: list[int]) -> None:
        self.store.set_meta("scenario", self.scenario.name)
        self.store.set_meta("seed", str(self.scenario.seed))
        self.store.set_meta("scan_days", json.dumps(days))
        self.store.set_meta("completed_days", json.dumps(completed))

    # ------------------------------------------------------------------

    def run(self, scan_days: list[int] | None = None,
            progress: bool = False,
            abort_event: asyncio.Event | None = None) -> CampaignResult:
        """Advance the cloud through its calendar, scanning on schedule.

        Days already recorded as completed in ``campaign_meta`` are
        skipped and a partial round left by a previous crash or abort
        is finished shard by shard, so calling :meth:`run` on a
        half-finished store *is* the resume path.  When *abort_event*
        is set, the current shard checkpoints and the campaign raises
        :class:`CampaignInterrupted` with the resumable day.
        """
        scenario = self.scenario
        days = scan_days if scan_days is not None else scenario.scan_days
        targets = scenario.targets
        completed = self._completed_days()
        self._write_progress(days, completed)
        partial = {
            info.timestamp: info.round_id for info in self.store.open_rounds()
        }
        summaries: list[RoundSummary] = []
        for day in days:
            if day in completed:
                continue
            if abort_event is not None and abort_event.is_set():
                raise CampaignInterrupted(scenario.name, day, -1)
            scenario.simulation.advance_to(day)
            try:
                summary = self.platform.run_round(
                    targets, timestamp=day,
                    abort_event=abort_event,
                    resume_round_id=partial.get(day),
                )
            except RoundInterrupted as exc:
                self._write_progress(days, completed)
                raise CampaignInterrupted(
                    scenario.name, day, exc.round_id
                ) from exc
            summaries.append(summary)
            completed.append(day)
            self.store.set_meta("completed_days", json.dumps(completed))
            if progress:
                print(
                    f"[{scenario.name}] day {day:3d}: "
                    f"responsive={summary.responsive} "
                    f"available={summary.available}"
                )
        return CampaignResult(scenario, self.store, summaries)

    def resume(self, progress: bool = False,
               abort_event: asyncio.Event | None = None) -> CampaignResult:
        """Continue an interrupted campaign from its own metadata.

        Reads the scan calendar persisted by a previous :meth:`run` and
        re-enters it; the caller must construct the Campaign with a
        scenario rebuilt from the same parameters (name, seed, size)."""
        raw = self.store.get_meta("scan_days")
        if raw is None:
            raise ValueError(
                "store has no campaign metadata; nothing to resume"
            )
        return self.run(
            scan_days=json.loads(raw),
            progress=progress,
            abort_event=abort_event,
        )
