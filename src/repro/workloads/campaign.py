"""Campaign driver: run WhoWas against a scenario on its scan calendar.

Replays §6's methodology — advance the simulated cloud day by day,
running one complete WhoWas round (probe → fetch → features → store) on
each scheduled scan day — and hands back everything the analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.clustering import ClusteringResult, WebpageClusterer
from ..analysis.dataset import Dataset
from ..core.config import FetchConfig, PlatformConfig, ScanConfig
from ..core.platform import RoundSummary, WhoWas
from ..core.store import MeasurementStore
from .scenario import Scenario

__all__ = ["simulation_config", "CampaignResult", "Campaign"]


def simulation_config(blacklist: frozenset[int] = frozenset()) -> PlatformConfig:
    """Platform config tuned for simulator speed: the polite-rate token
    bucket is pointless against an in-process simulator, so the rate is
    effectively unlimited; probe semantics (timeouts, no retries) keep
    the paper's defaults."""
    return PlatformConfig(
        scan=ScanConfig(probes_per_second=1e12, concurrency=2048),
        fetch=FetchConfig(workers=2048),
        blacklist=blacklist,
        grab_ssh_banners=True,
    )


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    scenario: Scenario
    store: MeasurementStore
    summaries: list[RoundSummary]
    _dataset: Dataset | None = field(default=None, repr=False)
    _clustering: ClusteringResult | None = field(default=None, repr=False)

    @property
    def dataset(self) -> Dataset:
        """The in-memory dataset (loaded lazily, cached)."""
        if self._dataset is None:
            self._dataset = Dataset.from_store(self.store)
        return self._dataset

    def clustering(self, **kwargs) -> ClusteringResult:
        """Run (or reuse) the §5 clustering over the campaign."""
        if kwargs:
            return WebpageClusterer(**kwargs).cluster(self.dataset)
        if self._clustering is None:
            self._clustering = WebpageClusterer().cluster(self.dataset)
        return self._clustering

    @property
    def round_count(self) -> int:
        return len(self.summaries)


class Campaign:
    """Runs a full measurement campaign over one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        store: MeasurementStore | None = None,
        config: PlatformConfig | None = None,
    ):
        self.scenario = scenario
        self.store = store or MeasurementStore()
        self.platform = WhoWas(
            scenario.transport, self.store, config or simulation_config()
        )

    def run(self, scan_days: list[int] | None = None,
            progress: bool = False) -> CampaignResult:
        """Advance the cloud through its calendar, scanning on schedule."""
        scenario = self.scenario
        days = scan_days if scan_days is not None else scenario.scan_days
        targets = scenario.targets
        summaries: list[RoundSummary] = []
        for day in days:
            scenario.simulation.advance_to(day)
            summary = self.platform.run_round(targets, timestamp=day)
            summaries.append(summary)
            if progress:
                print(
                    f"[{scenario.name}] day {day:3d}: "
                    f"responsive={summary.responsive} "
                    f"available={summary.available}"
                )
        return CampaignResult(scenario, self.store, summaries)
