"""Scenario builders and the measurement-campaign driver."""

from .campaign import (
    Campaign,
    CampaignInterrupted,
    CampaignResult,
    SimTransportFactory,
    build_sim_scenario,
    simulation_config,
)
from .scenario import (
    Scenario,
    azure_scenario,
    ec2_scenario,
    link_clouds,
    scan_calendar,
)

__all__ = [
    "Campaign",
    "CampaignInterrupted",
    "CampaignResult",
    "SimTransportFactory",
    "build_sim_scenario",
    "simulation_config",
    "Scenario",
    "azure_scenario",
    "ec2_scenario",
    "link_clouds",
    "scan_calendar",
]
