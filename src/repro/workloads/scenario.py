"""Ready-made measurement scenarios: EC2-like and Azure-like clouds.

Builders assemble a provider topology, a workload spec parameterised
from the paper's published statistics, the simulator, its network face,
DNS, and the blacklist services.  Scale is a knob: the paper probed
4,702,208 EC2 and 495,872 Azure IPs for 93/62 days; the default presets
keep every *rate* and only shrink the address space so that a full
campaign runs in seconds to minutes.

The scan calendar reproduces §6: a round every 3 days during the first
two months (2 days on Azure), daily in December — 51 rounds on EC2 and
46 on Azure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloudsim.blacklist import SafeBrowsingSim, VirusTotalSim
from ..cloudsim.dns import CloudDns
from ..cloudsim.network import SimulatedTransport
from ..cloudsim.population import GiantSpec, WorkloadSpec
from ..cloudsim.providers import AZURE_SPEC, EC2_SPEC, ProviderTopology
from ..cloudsim.services import (
    Elasticity,
    PORT_PROFILES_AZURE,
    PORT_PROFILES_EC2,
    PortProfile,
)
from ..cloudsim.simulation import CloudSimulation
from ..cloudsim.software import AZURE_CATALOG, EC2_CATALOG

__all__ = ["Scenario", "ec2_scenario", "azure_scenario", "scan_calendar"]

#: Mass-departure events (fraction of alive services leaving), relative
#: to each campaign's day 0 — the Friday/Saturday dips of Figure 8.
EC2_DEPARTURE_EVENTS = {4: 0.017, 39: 0.015, 61: 0.008, 75: 0.005, 89: 0.007}
AZURE_DEPARTURE_EVENTS = {29: 0.013, 37: 0.014}

#: Table 15's top-10 EC2 deployments, sizes expressed as fractions of
#: the occupied address space (the paper's cluster 1 held ~3% of EC2's
#: responsive IPs).  The paper's 130:1 size spread between clusters 1
#: and 10 would collapse giants 5-10 to one or two IPs at bench scale,
#: so sizes below cluster 1 are power-compressed (ratio^0.55) — the
#: ranking and per-cluster dynamics survive, only the spread shrinks.
#: Port profiles keep the per-IP Table 3 mix roughly intact; the top
#: PaaS is pinned to MochiWeb per §8.3.
EC2_GIANT_FRACTIONS: tuple[
    tuple[str, float, int, str, float, float, Elasticity, PortProfile, str],
    ...,
] = (
    # (category, size fraction, regions, networking, turnover,
    #  availability, elasticity, ports, server family)
    ("PaaS", 0.0300, 2, "classic", 0.010, 0.999, Elasticity.STABLE,
     PortProfile.HTTP_ONLY, "MochiWeb"),
    ("Cloud hosting", 0.0113, 8, "mixed", 0.030, 0.995, Elasticity.STABLE,
     PortProfile.BOTH, ""),
    ("VPN", 0.0065, 8, "mixed", 0.015, 0.995, Elasticity.STABLE,
     PortProfile.HTTP_ONLY, ""),
    ("SaaS", 0.0047, 6, "classic", 0.300, 0.990, Elasticity.NOISY,
     PortProfile.BOTH, ""),
    ("Game", 0.0034, 1, "classic", 0.280, 0.990, Elasticity.NOISY,
     PortProfile.HTTP_ONLY, ""),
    ("Shopping", 0.0031, 1, "classic", 0.020, 0.995, Elasticity.STEP_UP,
     PortProfile.BOTH, ""),
    ("PaaS", 0.0026, 1, "classic", 0.180, 0.990, Elasticity.NOISY,
     PortProfile.HTTP_ONLY, ""),
    ("Video", 0.0026, 2, "vpc", 0.080, 0.995, Elasticity.STABLE,
     PortProfile.BOTH, ""),
    ("Marketing", 0.0023, 1, "classic", 0.004, 0.999, Elasticity.STABLE,
     PortProfile.HTTP_ONLY, ""),
    ("Cloud hosting", 0.0022, 5, "classic", 0.250, 0.990, Elasticity.NOISY,
     PortProfile.HTTPS_ONLY, ""),
)


@dataclass
class Scenario:
    """A fully-assembled simulated cloud ready for measurement."""

    name: str
    topology: ProviderTopology
    simulation: CloudSimulation
    transport: SimulatedTransport
    dns: CloudDns
    workload: WorkloadSpec
    scan_days: list[int]
    #: RNG seed the scenario was built from; persisted in campaign
    #: metadata so `repro resume` can rebuild the identical cloud.
    seed: int = 0

    @property
    def targets(self) -> list[int]:
        """The advertised address list WhoWas is seeded with."""
        return list(self.topology.space.addresses())

    def safe_browsing(self, seed: int = 0) -> SafeBrowsingSim:
        return SafeBrowsingSim(self.simulation, seed=seed)

    def virustotal(self, seed: int = 0) -> VirusTotalSim:
        return VirusTotalSim(self.simulation, seed=seed)


def scan_calendar(duration_days: int, *, step: int = 3,
                  daily_from: int | None = None) -> list[int]:
    """The §6 calendar: sparse rounds first, daily near the end."""
    if daily_from is None:
        daily_from = duration_days * 2 // 3
    days = list(range(0, daily_from, step))
    days.extend(range(daily_from, duration_days))
    return days


def _giants(target_ips: int) -> tuple[GiantSpec, ...]:
    giants = []
    for (category, fraction, regions, networking, turnover, availability,
         elasticity, ports, server_family) in EC2_GIANT_FRACTIONS:
        size = max(2, round(target_ips * fraction))
        giants.append(
            GiantSpec(
                category=category,
                mean_size=size,
                region_count=regions,
                networking=networking,
                ip_turnover=turnover,
                availability=availability,
                elasticity=elasticity,
                port_profile=ports,
                server_family=server_family,
            )
        )
    return tuple(giants)


def ec2_scenario(
    total_ips: int = 16384,
    *,
    seed: int = 7,
    duration_days: int = 93,
    malicious_embedders: int = 24,
    malicious_hosters: int = 60,
    linchpin_services: int = 1,
    with_giants: bool = True,
) -> Scenario:
    """An EC2-like cloud: 8 regions, VPC split per Table 2, Table 15
    giants, weekend departures, and the §8.2 malicious mix."""
    topology = EC2_SPEC.build(total_ips, seed=seed)
    occupied = int(topology.space.size * 0.237)
    events = {
        day: fraction
        for day, fraction in EC2_DEPARTURE_EVENTS.items()
        if day < duration_days
    }
    workload = WorkloadSpec(
        cloud="EC2",
        occupancy=0.237,
        duration_days=duration_days,
        ephemeral_fraction=0.114,
        arrival_rate=0.0020,
        departure_events=events,
        malicious_embedders=malicious_embedders,
        malicious_hosters=malicious_hosters,
        linchpin_services=linchpin_services,
        giants=_giants(occupied) if with_giants else (),
    )
    simulation = CloudSimulation(
        topology, workload, EC2_CATALOG, PORT_PROFILES_EC2, seed=seed
    )
    calendar = [
        day for day in scan_calendar(duration_days, step=3, daily_from=62)
        if day < duration_days
    ]
    # 52 calendar slots; the paper completed 51 rounds (occasional
    # infrastructure stops early on) — drop one early round to match.
    if len(calendar) > 51:
        calendar = calendar[:1] + calendar[2:]
    return Scenario(
        name="EC2",
        topology=topology,
        simulation=simulation,
        transport=SimulatedTransport(simulation),
        dns=CloudDns(topology, simulation),
        workload=workload,
        scan_days=calendar,
        seed=seed,
    )


def azure_scenario(
    total_ips: int = 4096,
    *,
    seed: int = 11,
    duration_days: int = 62,
    malicious_embedders: int = 8,
    malicious_hosters: int = 0,
) -> Scenario:
    """An Azure-like cloud: IIS-dominated software mix, no VPC split,
    higher relative growth (7.3%), no VT-visible hosters (§8.2 found no
    VirusTotal-flagged IPs on Azure)."""
    topology = AZURE_SPEC.build(total_ips, seed=seed)
    events = {
        day: fraction
        for day, fraction in AZURE_DEPARTURE_EVENTS.items()
        if day < duration_days
    }
    workload = WorkloadSpec(
        cloud="Azure",
        occupancy=0.239,
        duration_days=duration_days,
        ephemeral_fraction=0.131,
        arrival_rate=0.0030,
        departure_events=events,
        size_weights=(
            ((1, 1), 86.2),
            ((2, 20), 13.6),
            ((21, 50), 0.1),
            ((51, 120), 0.1),
        ),
        elasticity_weights=(
            (Elasticity.STABLE, 53.9),
            (Elasticity.STEP_UP, 13.9),
            (Elasticity.STEP_DOWN, 12.5),
            (Elasticity.BUMP, 3.8),
            (Elasticity.DIP, 4.3),
            (Elasticity.NOISY, 11.6),
        ),
        status_weights=(
            ("200", 60.6),
            ("404", 24.0),
            ("403", 6.2),
            ("500", 6.5),
            ("503", 2.7),
        ),
        networking_weights=(("classic", 1.0),),
        arrival_vpc_fraction=0.0,
        malicious_embedders=malicious_embedders,
        malicious_hosters=malicious_hosters,
        linchpin_services=0,
        embedder_vt_fraction=0.0,
        tracker_share=0.40,
    )
    simulation = CloudSimulation(
        topology, workload, AZURE_CATALOG, PORT_PROFILES_AZURE, seed=seed
    )
    calendar = [
        day for day in scan_calendar(duration_days, step=2, daily_from=31)
        if day < duration_days
    ]
    # Trim to 46 rounds like the paper (occasional infrastructure stops).
    if len(calendar) > 46:
        calendar = calendar[-46:]
        calendar[0] = 0
    return Scenario(
        name="Azure",
        topology=topology,
        simulation=simulation,
        transport=SimulatedTransport(simulation),
        dns=CloudDns(topology, simulation),
        workload=workload,
        scan_days=calendar,
        seed=seed,
    )


def link_clouds(
    primary: Scenario,
    secondary: Scenario,
    *,
    shared_services: int = 12,
    seed: int = 0,
    include_vpn_giant: bool = True,
) -> int:
    """Deploy some of *primary*'s web applications in *secondary* too.

    §8.1 observes 980 clusters using both EC2 and Azure — mostly tiny,
    85% with the same average footprint in each cloud, plus one VPN
    service using 2,000+ more IPs on EC2.  Linking copies the content
    profile and software stack of small, stable primary services onto
    matching secondary services (and, optionally, mirrors the EC2 VPN
    giant as a small Azure deployment), so the cross-cloud matcher has
    genuine overlap to find.  Must be called before the campaigns run.
    Returns the number of linked services.
    """
    import random as _random

    rng = _random.Random(seed ^ 0xC105ED)

    def shareable(scenario: Scenario, max_size: int) -> list:
        return [
            s for s in scenario.simulation.services.values()
            if s.category == "web" and s.profile is not None
            and s.profile.status_code == 200
            and s.profile.content_type == "text/html"
            and not s.profile.robots_disallow
            and s.death_day is None and s.malicious is None
            and s.base_size <= max_size
        ]

    donors = shareable(primary, max_size=3)
    recipients = shareable(secondary, max_size=3)
    rng.shuffle(donors)
    rng.shuffle(recipients)
    linked = 0
    for donor, recipient in zip(donors, recipients):
        if linked >= shared_services:
            break
        recipient.profile = donor.profile
        recipient.stack = donor.stack
        recipient.base_size = donor.base_size
        recipient.elasticity = donor.elasticity = Elasticity.STABLE
        recipient.revision_rate = donor.revision_rate = 0.0
        recipient.redesign_rate = donor.redesign_rate = 0.0
        linked += 1
    if include_vpn_giant and linked < len(recipients):
        vpn = next(
            (s for s in primary.simulation.services.values()
             if s.category == "VPN"),
            None,
        )
        if vpn is not None and vpn.profile is not None:
            mirror = recipients[linked]
            mirror.profile = vpn.profile
            mirror.stack = vpn.stack
            mirror.base_size = 2          # tiny Azure presence (§8.1)
            mirror.elasticity = Elasticity.STABLE
            mirror.revision_rate = mirror.redesign_rate = 0.0
            vpn.revision_rate = 0.0
            linked += 1
    return linked
