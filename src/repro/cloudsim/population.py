"""Service population synthesis: turning a workload spec into tenants.

:class:`WorkloadSpec` captures, as explicit knobs, every distributional
fact the paper reports about cloud tenants (Tables 3, 4, 11, 15; §8.1's
size distribution and ephemeral share; §8.2's malicious mix), and
:class:`PopulationBuilder` draws a concrete service population from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .content import ContentFactory
from .malicious import MaliciousUrlFactory
from .services import (
    Elasticity,
    MaliciousBehavior,
    PortProfile,
    ServiceSpec,
)
from .software import SoftwareCatalog, WeightedChoice

__all__ = ["GiantSpec", "WorkloadSpec", "PopulationBuilder"]


@dataclass(frozen=True)
class GiantSpec:
    """An explicitly-configured very large deployment (Table 15 row)."""

    category: str
    mean_size: int
    region_count: int
    networking: str          # "classic", "vpc" or "mixed"
    ip_turnover: float       # daily IP replacement probability
    availability: float
    elasticity: Elasticity = Elasticity.NOISY
    #: Ports the deployment serves (giants are always web-facing).
    port_profile: PortProfile = PortProfile.HTTP_ONLY
    #: Optional pinned server family — §8.3 notes the largest PaaS runs
    #: MochiWeb on every instance.
    server_family: str = ""


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs describing one cloud's tenant population."""

    cloud: str
    #: Fraction of the address space occupied (responsive) at day 0;
    #: Table 7 measured 23.7% (EC2) and 23.9% (Azure).
    occupancy: float = 0.237
    #: Campaign length in days (93 for EC2, 62 for Azure).
    duration_days: int = 93
    #: Fraction of clusters that are ephemeral (§8.1: 11.4% / 13.1%).
    ephemeral_fraction: float = 0.114
    #: New services per day, as a fraction of the initial population.
    arrival_rate: float = 0.0011
    #: Daily probability an ordinary service departs for good.
    departure_rate: float = 0.0001
    #: day -> fraction of alive services leaving permanently that day
    #: (the Friday/Saturday dips of Figure 8).
    departure_events: dict[int, float] = field(default_factory=dict)
    #: Service footprint size distribution (§8.1 cluster sizes).
    size_weights: tuple[tuple[tuple[int, int], float], ...] = (
        ((1, 1), 78.8),
        ((2, 20), 20.8),
        ((21, 50), 0.28),
        ((51, 300), 0.07),
    )
    #: Elasticity pattern mix (Table 11).
    elasticity_weights: tuple[tuple[Elasticity, float], ...] = (
        (Elasticity.STABLE, 50.0),
        (Elasticity.STEP_UP, 15.0),
        (Elasticity.STEP_DOWN, 13.7),
        (Elasticity.BUMP, 5.2),
        (Elasticity.DIP, 4.1),
        (Elasticity.NOISY, 12.0),
    )
    #: HTTP status behaviour mix (Table 4 status-class shares).
    status_weights: tuple[tuple[str, float], ...] = (
        ("200", 64.7),
        ("404", 22.0),
        ("403", 6.0),
        ("500", 5.0),
        ("503", 2.2),
    )
    #: Of the "200" services, the fraction serving a stock default page
    #: (these form the large clusters the cleaning step drops).
    default_page_fraction: float = 0.05
    #: Fraction of single-region services; §8.1: 97% use one region.
    single_region_fraction: float = 0.97
    #: Networking mix for clusters (EC2 §8.1: 72.9% classic-only,
    #: 24.5% VPC-only, 2.6% mixed).  Ignored when VPC is unsupported.
    networking_weights: tuple[tuple[str, float], ...] = (
        ("classic", 72.9),
        ("vpc", 24.5),
        ("mixed", 2.6),
    )
    #: New arrivals prefer VPC (Amazon mandated VPC for new accounts;
    #: Figure 14 shows classic-only clusters declining).
    arrival_vpc_fraction: float = 0.75
    #: Number of GSB-visible malicious services (pages embedding
    #: malicious links) and VT-visible hosters.
    malicious_embedders: int = 0
    malicious_hosters: int = 0
    linchpin_services: int = 0
    #: Fraction of embedders that VirusTotal engines can also flag
    #: (Azure sets 0.0 — the paper found no VT-flagged Azure IPs).
    embedder_vt_fraction: float = 0.5
    #: Explicit giant deployments (Table 15), already scaled.
    giants: tuple[GiantSpec, ...] = ()
    #: Share of tracker-using pages (drives Table 20 volumes).
    tracker_share: float = 0.45


class PopulationBuilder:
    """Draws the initial service population and later arrivals."""

    def __init__(
        self,
        spec: WorkloadSpec,
        catalog: SoftwareCatalog,
        port_profiles: WeightedChoice[PortProfile],
        region_weights: list[tuple[str, float]],
        supports_vpc: bool,
        rng: random.Random,
    ):
        self.spec = spec
        self._catalog = catalog
        self._port_profiles = port_profiles
        self._regions = WeightedChoice(region_weights)
        self._region_names = [name for name, _ in region_weights]
        self._supports_vpc = supports_vpc
        self._rng = rng
        self._content = ContentFactory(rng, tracker_share=spec.tracker_share)
        self._malicious = MaliciousUrlFactory(rng)
        self._sizes = WeightedChoice(list(spec.size_weights))
        self._elasticities = WeightedChoice(list(spec.elasticity_weights))
        self._statuses = WeightedChoice(list(spec.status_weights))
        self._networkings = WeightedChoice(list(spec.networking_weights))
        self._next_id = 1
        #: Generic services are capped relative to the scaled population
        #: (set in build_initial); the Table 15 tail is modelled by the
        #: explicit giants, so an uncapped heavy tail would only add
        #: scale-dependent variance.
        self._max_size = 300

    # ------------------------------------------------------------------
    # population construction

    def build_initial(self, target_ips: int) -> list[ServiceSpec]:
        """Create services until their day-0 footprints cover roughly
        *target_ips* addresses, then attach giants and malicious mix."""
        services: list[ServiceSpec] = []
        self._max_size = max(18, target_ips // 100)
        giants = [self._make_giant(g) for g in self.spec.giants]
        covered = sum(g.base_size for g in giants)
        while covered < target_ips:
            ephemeral = self._rng.random() < self.spec.ephemeral_fraction
            if ephemeral:
                birth_day = self._rng.randrange(
                    0, max(1, self.spec.duration_days - 3)
                )
            else:
                birth_day = -self._rng.randrange(1, 400)
            service = self._make_service(birth_day=birth_day, ephemeral=ephemeral)
            services.append(service)
            if service.alive_on(0):
                covered += service.base_size
        services.extend(giants)
        self._attach_malicious(services)
        return services

    def make_arrival(self, day: int) -> ServiceSpec:
        """A service arriving mid-campaign (prefers VPC, Figure 14).

        Arrivals start small — overwhelmingly single-instance tenants —
        so cluster-count growth and IP growth stay in the paper's
        few-percent band together."""
        service = self._make_service(birth_day=day, ephemeral=False)
        if self._rng.random() < 0.85:
            service.base_size = 1
        if self._supports_vpc and self._rng.random() < self.spec.arrival_vpc_fraction:
            service.networking = "vpc"
        return service

    def arrivals_for_day(self, initial_count: int, rng: random.Random) -> int:
        """Poisson-ish arrival count for one day."""
        expected = self.spec.arrival_rate * initial_count
        count = int(expected)
        if rng.random() < expected - count:
            count += 1
        return count

    # ------------------------------------------------------------------
    # internals

    def _sample_size(self) -> int:
        low, high = self._sizes.sample(self._rng)
        if low == high:
            return low
        if high > 50:
            # Heavy tail: log-uniform across the giant range.
            import math

            log_low, log_high = math.log(low), math.log(high)
            size = int(round(math.exp(self._rng.uniform(log_low, log_high))))
        else:
            size = self._rng.randint(low, high)
        return min(size, self._max_size)

    def _sample_regions(self, count: int | None = None) -> tuple[str, ...]:
        if count is None:
            count = 1 if self._rng.random() < self.spec.single_region_fraction else (
                self._rng.randint(2, 3)
            )
        count = min(count, len(self._region_names))
        chosen: list[str] = []
        while len(chosen) < count:
            region = self._regions.sample(self._rng)
            if region not in chosen:
                chosen.append(region)
        return tuple(chosen)

    def _sample_networking(self) -> str:
        if not self._supports_vpc:
            return "classic"
        return self._networkings.sample(self._rng)

    def _sample_turnover(self, size: int) -> float:
        rng = self._rng
        if size == 1:
            # §8.1: 75.3% of clusters (the bulk singletons) show 100%
            # average IP uptime.
            return 0.0 if rng.random() < 0.92 else rng.uniform(0.005, 0.03)
        if size <= 20:
            # Figure 12: about half of size >= 2 clusters keep >= 90%
            # average IP uptime, so churn is rare and gentle here.
            return 0.0 if rng.random() < 0.7 else rng.uniform(0.001, 0.02)
        # Larger clusters churn more (Figure 12's spread, Table 15).
        return rng.uniform(0.01, 0.12)

    def _make_service(self, birth_day: int, *, ephemeral: bool) -> ServiceSpec:
        rng = self._rng
        spec = self.spec
        size = self._sample_size()
        port_profile = self._port_profiles.sample(rng)
        death_day = None
        if ephemeral:
            death_day = birth_day + rng.randint(1, 6)
        elasticity = (
            Elasticity.STABLE if ephemeral else self._elasticities.sample(rng)
        )
        profile = None
        stack = None
        category = "ssh"
        if port_profile.serves_web:
            stack = self._catalog.sample_stack(rng)
            status = self._statuses.sample(rng)
            default_family = ""
            if status == "200" and rng.random() < spec.default_page_fraction:
                default_family = stack.server_family or "Apache"
                category = "default"
            else:
                category = "web"
            profile = self._content.make_profile(
                template=stack.template,
                status_behavior=status,
                default_family=default_family,
            )
        duration = spec.duration_days
        step_day = rng.randint(duration // 6, 2 * duration // 3)
        if elasticity is Elasticity.DIP:
            # Table 11 reads 0,-1,1,0 as a drop immediately followed by
            # recovery (short-term unavailability), so dips are short.
            step2_day = step_day + rng.randint(3, 8)
        else:
            step2_day = rng.randint(
                step_day + max(7, duration // 10), duration + 7
            )
        step_factor = rng.uniform(1.3, 1.9)
        ssh_banner = ""
        if 22 in port_profile.open_ports:
            from .software import SSH_BANNERS

            ssh_banner = SSH_BANNERS.sample(rng)
        service = ServiceSpec(
            service_id=self._next_id,
            cloud=spec.cloud,
            category=category,
            regions=self._sample_regions(),
            networking=self._sample_networking(),
            base_size=size,
            elasticity=elasticity,
            birth_day=birth_day,
            death_day=death_day,
            port_profile=port_profile,
            profile=profile,
            stack=stack,
            availability=0.998 if rng.random() < 0.9 else rng.uniform(0.95, 0.995),
            ip_turnover=self._sample_turnover(size),
            revision_rate=rng.choice([0.0, 0.0, 0.01, 0.03]),
            redesign_rate=0.0 if rng.random() < 0.97 else 0.002,
            ssh_banner=ssh_banner,
            step_day=step_day,
            step2_day=step2_day,
            step_factor=step_factor,
        )
        self._next_id += 1
        return service

    def _make_giant(self, giant: GiantSpec) -> ServiceSpec:
        rng = self._rng
        if giant.server_family:
            stack = self._catalog.sample_stack_for_family(
                rng, giant.server_family
            )
        else:
            stack = self._catalog.sample_stack(rng)
        profile = self._content.make_profile(template=stack.template)
        duration = self.spec.duration_days
        service = ServiceSpec(
            service_id=self._next_id,
            cloud=self.spec.cloud,
            category=giant.category,
            regions=self._sample_regions(giant.region_count),
            networking=giant.networking,
            base_size=giant.mean_size,
            elasticity=giant.elasticity,
            birth_day=-400,
            death_day=None,
            port_profile=giant.port_profile,
            profile=profile,
            stack=stack,
            availability=giant.availability,
            ip_turnover=giant.ip_turnover,
            revision_rate=0.01,
            redesign_rate=0.0,
            step_day=rng.randint(max(1, duration // 4), max(2, duration // 2)),
            step2_day=max(3, duration // 2) + rng.randint(3, max(4, duration // 3)),
            step_factor=rng.uniform(1.3, 2.0),
        )
        self._next_id += 1
        return service

    def _attach_malicious(self, services: list[ServiceSpec]) -> None:
        """Flag services as malicious per the §8.2 mix."""
        rng = self._rng
        spec = self.spec
        web_services = [
            s for s in services
            if s.category == "web" and s.profile is not None
            and s.profile.status_code == 200 and s.base_size <= 10
            # The malicious page must actually be observable: a live,
            # fetchable HTML page (not ephemeral, robots-allowed).
            and s.death_day is None
            and s.profile.content_type == "text/html"
            and not s.profile.robots_disallow
        ]
        rng.shuffle(web_services)
        index = 0
        for _ in range(min(spec.malicious_embedders, len(web_services) - index)):
            service = web_services[index]
            index += 1
            behavior = self._malicious.make_behavior()
            behavior = self._with_removal(behavior)
            service.malicious = behavior
            if rng.random() < spec.embedder_vt_fraction:
                service.category = "web+vt"   # also VT-visible
        for _ in range(min(spec.linchpin_services, len(web_services) - index)):
            service = web_services[index]
            index += 1
            service.malicious = self._malicious.make_behavior(linchpin=True)
            service.category = "web+vt"
        hosters = [
            s for s in services
            if s.category == "web" and s.malicious is None
            and s.base_size <= 6 and s.death_day is None
        ]
        rng.shuffle(hosters)
        for service in hosters[: spec.malicious_hosters]:
            import dataclasses

            service.category = "vt-hoster"
            behavior = self._malicious.make_behavior()
            service.malicious = dataclasses.replace(behavior, on_page=False)
            # Hosters often churn IPs to evade blacklists, spreading
            # detections across many addresses (Table 17's growth).
            if service.ip_turnover == 0.0 and rng.random() < 0.5:
                service.ip_turnover = rng.uniform(0.01, 0.08)

    def _with_removal(self, behavior: MaliciousBehavior) -> MaliciousBehavior:
        """Sample the cleanup day relative to first detection (§8.2:
        most type 1/3 pages are removed after last detection; only ~40%
        of type 2 ever are)."""
        import dataclasses

        rng = self._rng
        if behavior.kind == 2:
            removed = rng.random() < 0.4
        else:
            removed = rng.random() < 0.8
        if not removed:
            return behavior
        removal = rng.randint(5, 40)
        return dataclasses.replace(behavior, removal_day_in_life=removal)
