"""SimulatedTransport: the cloud simulator's network face.

Implements the same :class:`~repro.core.transport.Transport` protocol as
the real-socket transport, so the WhoWas scanner and fetcher run against
the simulator unmodified.  Probes honour per-(ip, day) latency and
flakiness (driving the §4 timeout experiment); HTTP responses carry the
owning service's software headers and rendered page.
"""

from __future__ import annotations

from collections import Counter

from ..core.transport import (
    ConnectionRefused,
    ConnectTimeout,
    HttpResponse,
    ProtocolError,
    TransportError,
)
from .services import ServiceSpec
from .simulation import CloudSimulation, HostState

__all__ = ["SimulatedTransport"]

_WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


class SimulatedTransport:
    """Answers probes and GETs from the simulation's ground truth."""

    def __init__(self, simulation: CloudSimulation):
        self.simulation = simulation
        self._page_cache: dict[tuple, str] = {}
        self._attempts: Counter[tuple[int, int, int]] = Counter()
        #: Counters for politeness auditing in tests and ethics checks.
        self.probe_count = 0
        self.get_count = 0

    # ------------------------------------------------------------------
    # Transport protocol

    async def probe(self, ip: int, port: int, timeout: float) -> bool:
        self.probe_count += 1
        sim = self.simulation
        day = sim.day
        state = sim.host_state(ip)
        if state is None or port not in state.open_ports:
            return False
        if sim.probe_latency(ip, day) > timeout:
            return False
        if sim.is_flaky(ip, day):
            key = (ip, port, day)
            attempt = self._attempts[key]
            self._attempts[key] += 1
            if sim.flaky_drop(ip, day, attempt):
                return False
        return True

    async def banner(self, ip: int, port: int, timeout: float) -> str:
        sim = self.simulation
        state = sim.host_state(ip)
        if state is None or port not in state.open_ports:
            raise ConnectionRefused("connection refused")
        if port != 22 or not state.service.ssh_banner:
            raise TransportError("no banner")
        if sim.probe_latency(ip, sim.day) > timeout:
            raise ConnectTimeout("banner read timed out")
        return state.service.ssh_banner

    async def get(
        self,
        ip: int,
        scheme: str,
        path: str,
        *,
        timeout: float,
        max_body: int,
        headers=None,
    ) -> HttpResponse:
        self.get_count += 1
        sim = self.simulation
        state = sim.host_state(ip)
        if state is None:
            raise ConnectionRefused("connection refused")
        service = state.service
        port = 443 if scheme == "https" else 80
        if port not in state.open_ports:
            raise ConnectionRefused(f"port {port} closed")
        if not service.serves_web:
            raise ProtocolError("connection reset by peer")
        if not sim.service_web_up(service, ip, sim.day):
            raise ConnectTimeout("connection timed out")
        if path in ("/robots.txt", "robots.txt"):
            return self._robots_response(service)
        return self._page_response(state, path, max_body)

    # ------------------------------------------------------------------
    # response synthesis

    def _robots_response(self, service: ServiceSpec) -> HttpResponse:
        profile = service.profile
        assert profile is not None
        if profile.robots_disallow:
            body = b"User-agent: *\nDisallow: /\n"
            return HttpResponse(
                200, self._base_headers(service, "text/plain", len(body)), body
            )
        # Most tenants simply have no robots.txt.
        body = b"Not Found"
        return HttpResponse(
            404, self._base_headers(service, "text/html", len(body)), body
        )

    def _page_response(self, state: HostState, path: str,
                       max_body: int) -> HttpResponse:
        service = state.service
        profile = service.profile
        assert profile is not None
        if path not in ("", "/"):
            return self._subpage_response(service, path, max_body)
        active_urls: tuple[str, ...] = ()
        if service.malicious is not None and service.malicious.on_page:
            active_urls = service.malicious.active_urls(state.day_in_life)
        cache_key = (
            service.service_id,
            service.major_version,
            service.revision,
            hash(active_urls),
        )
        body_text = self._page_cache.get(cache_key)
        if body_text is None:
            rendered = profile
            if active_urls:
                rendered = profile.with_malicious_links(active_urls)
            body_text = rendered.render(service.major_version, service.revision)
            self._page_cache[cache_key] = body_text
        body = body_text.encode("utf-8")[:max_body]
        headers = self._base_headers(service, profile.content_type, len(body))
        return HttpResponse(profile.status_code, headers, body)

    def _subpage_response(self, service: ServiceSpec, path: str,
                          max_body: int) -> HttpResponse:
        profile = service.profile
        assert profile is not None
        if profile.status_code != 200 or path not in profile.subpages:
            body = b"<html><title>404 Not Found</title></html>"
            return HttpResponse(
                404, self._base_headers(service, "text/html", len(body)), body
            )
        cache_key = (
            service.service_id, service.major_version, service.revision, path
        )
        body_text = self._page_cache.get(cache_key)
        if body_text is None:
            body_text = profile.render_subpage(
                path, service.major_version, service.revision
            )
            self._page_cache[cache_key] = body_text
        body = body_text.encode("utf-8")[:max_body]
        headers = self._base_headers(service, "text/html", len(body))
        return HttpResponse(200, headers, body)

    def _base_headers(
        self, service: ServiceSpec, content_type: str, length: int
    ) -> dict[str, str]:
        day = self.simulation.day
        headers = {
            "Date": f"{_WEEKDAYS[day % 7]}, {day % 28 + 1:02d} Oct 2013 00:00:00 GMT",
            "Content-Type": (
                f"{content_type}; charset=utf-8"
                if content_type.startswith("text/") else content_type
            ),
            "Content-Length": str(length),
            "Connection": "close",
        }
        stack = service.stack
        if stack is not None:
            if stack.server:
                headers["Server"] = stack.server
            if stack.backend:
                headers["X-Powered-By"] = stack.backend
            if stack.server_family == "Apache":
                headers["Accept-Ranges"] = "bytes"
                headers["Vary"] = "Accept-Encoding"
            elif stack.server_family == "Microsoft-IIS":
                headers["X-AspNet-Version"] = "4.0.30319"
            elif stack.server_family == "nginx":
                headers["Accept-Ranges"] = "bytes"
        return headers
