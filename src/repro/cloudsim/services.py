"""Tenant service model: footprints, elasticity, lifecycle, churn.

A *service* is the simulator's ground-truth unit of ownership — the thing
WhoWas's clustering tries to recover from page content.  Each service has
a footprint (how many public IPs it holds each day), an elasticity
pattern (how that footprint evolves — these generate the size-change
patterns of Table 11), a lifecycle (birth/death days; ~11-13% of clusters
are ephemeral), per-day availability, and an IP turnover rate (churn
within the cluster, Figure 12 / Table 15).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from .content import ContentProfile
from .software import SoftwareStack, WeightedChoice

__all__ = [
    "Elasticity",
    "PortProfile",
    "MaliciousBehavior",
    "ServiceSpec",
    "target_size",
    "PORT_PROFILES_EC2",
    "PORT_PROFILES_AZURE",
]


class Elasticity(enum.Enum):
    """Footprint evolution archetypes; names follow Table 11's tendency
    vectors (0 = flat, 1 = grow, -1 = shrink)."""

    STABLE = "0"
    STEP_UP = "0,1,0"
    STEP_DOWN = "0,-1,0"
    BUMP = "0,1,0,-1,0"
    DIP = "0,-1,1,0"
    NOISY = "noisy"


class PortProfile(enum.Enum):
    """Which of the three probed ports a service keeps open (Table 3)."""

    SSH_ONLY = "22-only"
    HTTP_ONLY = "80-only"
    HTTPS_ONLY = "443-only"
    BOTH = "80&443"

    @property
    def open_ports(self) -> frozenset[int]:
        return _PORTS_BY_PROFILE[self]

    @property
    def serves_web(self) -> bool:
        return self is not PortProfile.SSH_ONLY


_PORTS_BY_PROFILE = {
    PortProfile.SSH_ONLY: frozenset({22}),
    PortProfile.HTTP_ONLY: frozenset({80, 22}),
    PortProfile.HTTPS_ONLY: frozenset({443}),
    PortProfile.BOTH: frozenset({80, 443}),
}

#: Port-profile mix per cloud, weights from Table 3.
PORT_PROFILES_EC2 = WeightedChoice(
    [
        (PortProfile.SSH_ONLY, 25.9),
        (PortProfile.HTTP_ONLY, 38.0),
        (PortProfile.HTTPS_ONLY, 5.5),
        (PortProfile.BOTH, 30.6),
    ]
)
PORT_PROFILES_AZURE = WeightedChoice(
    [
        (PortProfile.SSH_ONLY, 9.3),
        (PortProfile.HTTP_ONLY, 45.8),
        (PortProfile.HTTPS_ONLY, 16.5),
        (PortProfile.BOTH, 28.4),
    ]
)


@dataclass(frozen=True)
class MaliciousBehavior:
    """Malicious-content behaviour observed in §8.2.

    ``kind`` selects one of the three behaviours: type 1 hosts the same
    malicious page throughout, type 2 has the page appear and disappear
    repeatedly, type 3 rotates through several distinct malicious pages.
    """

    kind: int                       # 1, 2 or 3
    category: str                   # "malware" or "phishing"
    urls: tuple[str, ...]           # malicious URLs embedded in the page
    #: For type 2: period (days) of the appear/disappear cycle.
    toggle_period: int = 7
    #: For type 3: day length of each distinct malicious page.
    rotation_period: int = 14
    #: Linchpin pages aggregate many malicious URLs (§8.2).
    linchpin: bool = False
    #: Day of life on which the tenant cleans the page up (None = never).
    removal_day_in_life: int | None = None
    #: Whether the malicious URLs appear on the top-level page (visible
    #: to the Safe Browsing link analysis).  VT-only hosters serve their
    #: payloads at deep paths the fetcher never visits.
    on_page: bool = True

    def active_urls(self, day_in_life: int) -> tuple[str, ...]:
        """Malicious URLs present in the page on a given day of life."""
        if not self.urls:
            return ()
        if (
            self.removal_day_in_life is not None
            and day_in_life >= self.removal_day_in_life
        ):
            return ()
        if self.kind == 1:
            return self.urls
        if self.kind == 2:
            phase = (day_in_life // max(1, self.toggle_period)) % 2
            return self.urls if phase == 0 else ()
        # Type 3: rotate through the URL list in chunks.
        chunk = max(1, len(self.urls) // 3)
        start = (day_in_life // max(1, self.rotation_period)) * chunk
        start %= len(self.urls)
        return self.urls[start : start + chunk] or self.urls[:chunk]


@dataclass
class ServiceSpec:
    """One simulated tenant web service (a ground-truth cluster)."""

    service_id: int
    cloud: str
    category: str                  # "web", "ssh", "paas", "default", ...
    regions: tuple[str, ...]
    networking: str                # "classic", "vpc" or "mixed"
    base_size: int
    elasticity: Elasticity
    birth_day: int
    death_day: int | None          # None = survives past the campaign
    port_profile: PortProfile
    profile: ContentProfile | None   # None for SSH-only services
    stack: SoftwareStack | None
    #: Daily probability every IP answers HTTP (service-level dips drive
    #: the availability churn of Figure 9/10).
    availability: float = 0.995
    #: Daily probability that any given held IP is swapped for a fresh one.
    ip_turnover: float = 0.0
    #: Daily probability of a minor content revision (simhash moves ≤3 bits).
    revision_rate: float = 0.02
    #: Daily probability of a full redesign (new major version → new cluster).
    redesign_rate: float = 0.0
    #: SSH banner served on port 22 ("" if port 22 is closed).
    ssh_banner: str = ""
    #: Elasticity shape parameters, resolved at build time.
    step_day: int = 30
    step2_day: int = 60
    step_factor: float = 2.0
    malicious: MaliciousBehavior | None = None
    #: Filled by the simulation as content evolves.
    major_version: int = field(default=0, compare=False)
    revision: int = field(default=0, compare=False)

    def alive_on(self, day: int) -> bool:
        if day < self.birth_day:
            return False
        return self.death_day is None or day < self.death_day

    def day_in_life(self, day: int) -> int:
        return day - self.birth_day

    @property
    def serves_web(self) -> bool:
        return self.port_profile.serves_web and self.profile is not None


def target_size(spec: ServiceSpec, day: int,
                rng: random.Random | None = None) -> int:
    """Footprint (number of IPs) the service wants on *day*.

    Fully deterministic: :attr:`Elasticity.NOISY` jitter is derived from
    a stable hash of (service, week), so the footprint moves weekly and
    repeated queries within a day agree.  *rng* is accepted for
    signature compatibility and ignored.
    """
    del rng
    if not spec.alive_on(day):
        return 0
    base = spec.base_size
    # Step deltas are symmetric and capped so that, with Table 11's
    # nearly-equal grow/shrink pattern weights, heavy-tailed size draws
    # cannot skew the cloud's aggregate footprint noticeably.
    delta = max(1, min(3, round(base * (spec.step_factor - 1.0))))
    grown = base + delta
    shrunk = max(0, base - delta)
    kind = spec.elasticity
    if kind is Elasticity.STABLE:
        return base
    if kind is Elasticity.STEP_UP:
        return grown if day >= spec.step_day else base
    if kind is Elasticity.STEP_DOWN:
        if day < spec.step_day:
            return base
        # Singletons stepping down go to zero IPs — the cluster winds
        # down but is still counted by its earlier rounds.
        return shrunk
    if kind is Elasticity.BUMP:
        return grown if spec.step_day <= day < spec.step2_day else base
    if kind is Elasticity.DIP:
        return shrunk if spec.step_day <= day < spec.step2_day else base
    # NOISY: a bounded weekly random walk around the base size.
    week_rng = random.Random(spec.service_id * 65_537 + (day // 7))
    jitter = week_rng.gauss(0, max(1.0, base * 0.2))
    return max(1, int(round(base + jitter)))
