"""Simulated IaaS cloud substrate.

This subpackage stands in for the live EC2/Azure infrastructure the
paper measured: address spaces and regions (:mod:`addressing`,
:mod:`providers`), tenant services and their dynamics (:mod:`services`,
:mod:`population`, :mod:`simulation`), synthetic web content and software
stacks (:mod:`content`, :mod:`software`), the network face the WhoWas
scanner probes (:mod:`network`), EC2-style DNS (:mod:`dns`), and the
external blacklist services (:mod:`blacklist`).
"""

from .addressing import AddressSpace, Prefix, Region, int_to_ip, ip_to_int
from .blacklist import SafeBrowsingSim, VirusTotalReport, VirusTotalSim
from .content import ContentFactory, ContentProfile, TRACKER_CATALOG
from .dns import CloudDns, DnsAnswer, public_hostname
from .instances import Deployment, IpPool
from .malicious import MaliciousUrlFactory
from .network import SimulatedTransport
from .population import GiantSpec, PopulationBuilder, WorkloadSpec
from .providers import (
    AZURE_SPEC,
    EC2_SPEC,
    NetKind,
    ProviderSpec,
    ProviderTopology,
    RegionSpec,
)
from .services import Elasticity, MaliciousBehavior, PortProfile, ServiceSpec
from .simulation import CloudSimulation, DeploymentLog, HostState
from .software import (
    AZURE_CATALOG,
    EC2_CATALOG,
    SoftwareCatalog,
    SoftwareStack,
    WeightedChoice,
)

__all__ = [
    "AddressSpace",
    "Prefix",
    "Region",
    "int_to_ip",
    "ip_to_int",
    "SafeBrowsingSim",
    "VirusTotalReport",
    "VirusTotalSim",
    "ContentFactory",
    "ContentProfile",
    "TRACKER_CATALOG",
    "CloudDns",
    "DnsAnswer",
    "public_hostname",
    "Deployment",
    "IpPool",
    "MaliciousUrlFactory",
    "SimulatedTransport",
    "GiantSpec",
    "PopulationBuilder",
    "WorkloadSpec",
    "AZURE_SPEC",
    "EC2_SPEC",
    "NetKind",
    "ProviderSpec",
    "ProviderTopology",
    "RegionSpec",
    "Elasticity",
    "MaliciousBehavior",
    "PortProfile",
    "ServiceSpec",
    "CloudSimulation",
    "DeploymentLog",
    "HostState",
    "AZURE_CATALOG",
    "EC2_CATALOG",
    "SoftwareCatalog",
    "SoftwareStack",
    "WeightedChoice",
]
