"""The day-granularity IaaS cloud simulator.

:class:`CloudSimulation` advances one day at a time, maintaining the
ground-truth mapping of public IP → owning service.  Each day it

1. admits arriving services and executes departures (including the
   configured Friday/Saturday mass-departure events of Figure 8),
2. resizes every live service toward its elasticity target and applies
   per-service IP turnover (release + reacquire, so addresses recycle
   across tenants — the churn the paper measures),
3. evolves content: minor revisions (small simhash moves) and rare full
   redesigns (which legitimately move a service to a new cluster).

The simulator is fully deterministic given its seed.  Per-(ip, day)
transient effects — slow responders, flaky hosts, service downtime —
are derived from stable hashes so that queries are repeatable and
order-independent.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from .instances import Deployment, IpPool
from .population import PopulationBuilder, WorkloadSpec
from .providers import ProviderTopology
from .services import ServiceSpec, target_size
from .software import WeightedChoice

__all__ = ["HostState", "DeploymentInterval", "DeploymentLog", "CloudSimulation"]


@dataclass
class DeploymentInterval:
    """A closed-open interval during which a service held an IP:
    days ``[start_day, end_day)``; ``end_day`` is None while open."""

    ip: int
    service_id: int
    kind: str
    start_day: int
    end_day: int | None = None

    def covers(self, day: int) -> bool:
        if day < self.start_day:
            return False
        return self.end_day is None or day < self.end_day


class DeploymentLog:
    """Complete history of IP ownership — the simulator's ground truth.

    Enables reconstructing who owned any IP on any day (which the
    blacklist simulators and the clustering-quality tests need) without
    storing per-day snapshots.
    """

    def __init__(self) -> None:
        self.intervals: list[DeploymentInterval] = []
        self._open_by_ip: dict[int, int] = {}
        self._by_service: dict[int, list[int]] = {}
        self._by_ip: dict[int, list[int]] = {}

    def on_acquire(self, ip: int, service_id: int, kind: str, day: int) -> None:
        index = len(self.intervals)
        self.intervals.append(DeploymentInterval(ip, service_id, kind, day))
        self._open_by_ip[ip] = index
        self._by_service.setdefault(service_id, []).append(index)
        self._by_ip.setdefault(ip, []).append(index)

    def on_release(self, ip: int, day: int) -> None:
        index = self._open_by_ip.pop(ip)
        self.intervals[index].end_day = day

    def intervals_for_service(self, service_id: int) -> list[DeploymentInterval]:
        return [self.intervals[i] for i in self._by_service.get(service_id, ())]

    def intervals_for_ip(self, ip: int) -> list[DeploymentInterval]:
        return [self.intervals[i] for i in self._by_ip.get(ip, ())]

    def owner_on(self, ip: int, day: int) -> int | None:
        for interval in self.intervals_for_ip(ip):
            if interval.covers(day):
                return interval.service_id
        return None


@dataclass(frozen=True)
class HostState:
    """Everything the network layer needs to answer probes for one IP."""

    ip: int
    service: ServiceSpec
    region: str
    kind: str
    since_day: int
    day: int

    @property
    def open_ports(self) -> frozenset[int]:
        return self.service.port_profile.open_ports

    @property
    def day_in_life(self) -> int:
        return self.service.day_in_life(self.day)


def _stable_hash(*parts: int | str) -> int:
    """Process-stable hash (unlike builtin ``hash``, which is salted by
    PYTHONHASHSEED and would break seed-reproducibility)."""
    data = b":".join(str(p).encode() for p in parts)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class CloudSimulation:
    """Simulated cloud with ground-truth accessors.

    Parameters
    ----------
    topology:
        The provider's address layout.
    workload:
        Population knobs (see :class:`WorkloadSpec`).
    catalog, port_profiles:
        Software and port-profile distributions for the cloud.
    seed:
        Master seed; two simulations with equal arguments are identical.
    slow_host_rate / flaky_host_rate:
        Per-(ip, day) probability that a host answers slowly (misses the
        2 s probe timeout but answers within 8 s) or drops probes with
        50% probability.  Calibrated to the §4 timeout experiment
        (+0.61% responsive at 8 s; +0.27% with 4 retries).
    """

    def __init__(
        self,
        topology: ProviderTopology,
        workload: WorkloadSpec,
        catalog,
        port_profiles: WeightedChoice,
        seed: int = 0,
        *,
        slow_host_rate: float = 0.006,
        flaky_host_rate: float = 0.004,
    ):
        self.topology = topology
        self.workload = workload
        self.slow_host_rate = slow_host_rate
        self.flaky_host_rate = flaky_host_rate
        self._seed = seed
        self._rng = random.Random(seed)
        self.day = 0

        region_weights = [
            (spec.name, spec.weight) for spec in topology.spec.regions
        ]
        self.builder = PopulationBuilder(
            workload,
            catalog,
            port_profiles,
            region_weights,
            topology.spec.supports_vpc,
            random.Random(seed ^ 0xB111D),
        )
        self._pools: dict[str, IpPool] = {
            spec.name: IpPool(
                topology.addresses_by_kind(spec.name),
                random.Random(seed ^ _stable_hash(spec.name)),
            )
            for spec in topology.spec.regions
        }
        self.services: dict[int, ServiceSpec] = {}
        self._footprints: dict[int, list[Deployment]] = {}
        self._owner: dict[int, Deployment] = {}
        self._domain_index: dict[str, int] = {}
        self.log = DeploymentLog()

        target_ips = int(topology.space.size * workload.occupancy)
        initial = self.builder.build_initial(target_ips)
        for service in initial:
            self._register(service)
        self._initial_count = len(initial)
        self._sync_all_footprints()

    # ------------------------------------------------------------------
    # time

    def step(self) -> None:
        """Advance the simulation by one day."""
        self.day += 1
        day = self.day
        rng = self._rng
        spec = self.workload

        for _ in range(self.builder.arrivals_for_day(self._initial_count, rng)):
            self._register(self.builder.make_arrival(day))

        event_fraction = spec.departure_events.get(day, 0.0)
        if event_fraction > 0.0:
            self._mass_departure(event_fraction)

        for service in self.services.values():
            if service.death_day is None and service.birth_day < day:
                if service.base_size > 20:
                    continue  # large deployments persist (Table 15)
                if rng.random() < spec.departure_rate:
                    service.death_day = day

        self._sync_all_footprints()
        self._evolve_content()

    def advance_to(self, day: int) -> None:
        """Step forward until ``self.day == day``."""
        if day < self.day:
            raise ValueError(f"cannot rewind from day {self.day} to {day}")
        while self.day < day:
            self.step()

    # ------------------------------------------------------------------
    # ground truth accessors

    def host_state(self, ip: int, day: int | None = None) -> HostState | None:
        """The live deployment on *ip* today, or None if idle."""
        deployment = self._owner.get(ip)
        if deployment is None:
            return None
        service = self.services[deployment.service_id]
        return HostState(
            ip=ip,
            service=service,
            region=self.topology.region_of(ip),
            kind=deployment.kind,
            since_day=deployment.since_day,
            day=self.day if day is None else day,
        )

    def owner_of(self, ip: int) -> int | None:
        deployment = self._owner.get(ip)
        return deployment.service_id if deployment else None

    def footprint(self, service_id: int) -> list[int]:
        """IPs currently held by a service."""
        return [d.ip for d in self._footprints.get(service_id, ())]

    def assignments(self) -> dict[int, int]:
        """Snapshot of ip -> service_id for the current day."""
        return {ip: d.service_id for ip, d in self._owner.items()}

    def live_services(self) -> list[ServiceSpec]:
        return [s for s in self.services.values() if s.alive_on(self.day)]

    def service_for_domain(self, domain: str) -> ServiceSpec | None:
        """The tenant service owning a registered domain, if any."""
        service_id = self._domain_index.get(domain)
        return self.services.get(service_id) if service_id else None

    def occupied_count(self) -> int:
        return len(self._owner)

    # ------------------------------------------------------------------
    # per-(ip, day) transient behaviour (stable, order-independent)

    def probe_latency(self, ip: int, day: int) -> float:
        """Seconds before the host completes the TCP handshake.

        Whether a host is a *slow responder* (answers between 2 s and
        8 s, so it misses the default probe timeout) is a stable per-IP
        property — re-probing the same host across rounds agrees, so
        slow hosts do not masquerade as responsiveness churn.
        """
        roll = _stable_hash(self._seed, ip, 1) / 2**64
        if roll < self.slow_host_rate:
            return 2.0 + 6.0 * (_stable_hash(self._seed, ip, 2) / 2**64)
        return 0.05 + 0.8 * (_stable_hash(self._seed, ip, day, 3) / 2**64)

    def is_flaky(self, ip: int, day: int) -> bool:
        """Flakiness is likewise a stable per-IP property; individual
        probe drops vary per attempt (see :meth:`flaky_drop`)."""
        del day
        roll = _stable_hash(self._seed, ip, 4) / 2**64
        return roll < self.flaky_host_rate

    def flaky_drop(self, ip: int, day: int, attempt: int) -> bool:
        """Whether a flaky host drops this particular probe attempt."""
        roll = _stable_hash(self._seed, ip, day, 5, attempt) / 2**64
        return roll < 0.5

    def service_web_up(self, service: ServiceSpec, ip: int, day: int) -> bool:
        """Whether this instance answers HTTP on *day*.

        Downtime is drawn per (IP, day) with the service's availability,
        so a large deployment's dips hit individual instances (crashed
        or restarting VMs) rather than blacking out the whole cluster.
        """
        roll = _stable_hash(self._seed, service.service_id, ip, day, 6) / 2**64
        return roll < service.availability

    # ------------------------------------------------------------------
    # internals

    def _register(self, service: ServiceSpec) -> None:
        self.services[service.service_id] = service
        self._footprints[service.service_id] = []
        if service.profile is not None and service.profile.domain:
            self._domain_index[service.profile.domain] = service.service_id

    def _mass_departure(self, fraction: float) -> None:
        """A Friday/Saturday event: a batch of services leaves for good."""
        candidates = [
            s for s in self.services.values()
            if s.alive_on(self.day) and s.base_size <= 20
        ]
        count = int(len(candidates) * fraction)
        for service in self._rng.sample(candidates, min(count, len(candidates))):
            service.death_day = self.day

    def _sync_all_footprints(self) -> None:
        day = self.day
        # Releases first so departing tenants' IPs are reusable same-day.
        for service in self.services.values():
            deployments = self._footprints[service.service_id]
            target = target_size(service, day, self._rng)
            if len(deployments) > target:
                self._release_some(service, len(deployments) - target)
        for service in self.services.values():
            deployments = self._footprints[service.service_id]
            target = target_size(service, day, self._rng)
            if len(deployments) < target:
                self._acquire_some(service, target - len(deployments))
            self._apply_turnover(service)

    def _pool_for(self, service: ServiceSpec) -> tuple[str, IpPool]:
        region = self._rng.choice(service.regions)
        return region, self._pools[region]

    def _acquire_kind(self, service: ServiceSpec) -> str:
        if service.networking == "mixed":
            return "vpc" if self._rng.random() < 0.5 else "classic"
        return service.networking

    def _acquire_some(self, service: ServiceSpec, count: int) -> None:
        deployments = self._footprints[service.service_id]
        for _ in range(count):
            _, pool = self._pool_for(service)
            address = pool.acquire(self._acquire_kind(service))
            if address is None:
                continue  # region exhausted; tenant simply gets fewer IPs
            deployment = Deployment(
                service_id=service.service_id,
                ip=address,
                kind=pool.kind_of(address),
                since_day=self.day,
            )
            deployments.append(deployment)
            self._owner[address] = deployment
            self.log.on_acquire(address, service.service_id, deployment.kind, self.day)

    def _release_some(self, service: ServiceSpec, count: int) -> None:
        deployments = self._footprints[service.service_id]
        for _ in range(min(count, len(deployments))):
            index = self._rng.randrange(len(deployments))
            deployments[index], deployments[-1] = deployments[-1], deployments[index]
            deployment = deployments.pop()
            self._release_deployment(deployment)

    def _release_deployment(self, deployment: Deployment) -> None:
        del self._owner[deployment.ip]
        self._region_pool(deployment.ip).release(deployment.ip)
        self.log.on_release(deployment.ip, self.day)

    def _region_pool(self, ip: int) -> IpPool:
        return self._pools[self.topology.region_of(ip)]

    def _apply_turnover(self, service: ServiceSpec) -> None:
        if service.ip_turnover <= 0.0:
            return
        deployments = self._footprints[service.service_id]
        if not deployments:
            return
        swaps = 0
        for deployment in list(deployments):
            if self._rng.random() < service.ip_turnover:
                swaps += 1
                deployments.remove(deployment)
                self._release_deployment(deployment)
        if swaps:
            self._acquire_some(service, swaps)

    def _evolve_content(self) -> None:
        for service in self.services.values():
            if not service.alive_on(self.day) or service.profile is None:
                continue
            if service.redesign_rate and self._rng.random() < service.redesign_rate:
                service.major_version += 1
                service.revision = 0
            elif service.revision_rate and self._rng.random() < service.revision_rate:
                service.revision += 1
