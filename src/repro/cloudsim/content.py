"""Synthetic webpage generation for simulated cloud tenants.

Every simulated web service owns a :class:`ContentProfile` describing the
page it serves: title, meta description/keywords, generator template,
Google Analytics ID, third-party tracker snippets, embedded links, and a
deterministic body.  Profiles render to HTML as a function of a *major*
version (site redesigns, which move the page to a different cluster) and
a *revision* (small edits, which perturb only a few tokens so the simhash
stays within the merge threshold).

The tracker catalog reproduces Table 20: tracking code always contains a
characteristic URL that the analysis engine fingerprints with a regex.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

__all__ = [
    "TrackerSpec",
    "TRACKER_CATALOG",
    "GoogleAnalyticsRegistry",
    "ContentProfile",
    "ContentFactory",
    "DEFAULT_PAGES",
]


@dataclass(frozen=True)
class TrackerSpec:
    """A third-party tracker and the URL fingerprint its code embeds."""

    name: str
    fingerprint_url: str

    def script(self, site_token: str) -> str:
        return (
            f'<script type="text/javascript" src='
            f'"{self.fingerprint_url}/{site_token}.js"></script>'
        )


#: Trackers of Table 20 with weights shaped like the measured popularity
#: (google-analytics handled separately because it carries an account ID).
TRACKER_CATALOG: tuple[tuple[TrackerSpec, float], ...] = (
    (TrackerSpec("facebook", "http://connect.facebook.net/en_US/all"), 24130),
    (TrackerSpec("twitter", "http://platform.twitter.com/widgets"), 14706),
    (TrackerSpec("doubleclick", "http://ad.doubleclick.net/adj"), 5342),
    (TrackerSpec("quantserve", "http://edge.quantserve.com/quant"), 2243),
    (TrackerSpec("scorecardresearch", "http://b.scorecardresearch.com/beacon"), 1509),
    (TrackerSpec("imrworldwide", "http://secure-us.imrworldwide.com/v60"), 474),
    (TrackerSpec("serving-sys", "http://bs.serving-sys.com/BurstingPipe"), 383),
    (TrackerSpec("atdmt", "http://view.atdmt.com/action"), 275),
    (TrackerSpec("yieldmanager", "http://ad.yieldmanager.com/pixel"), 188),
    (TrackerSpec("adnxs", "http://ib.adnxs.com/ttj"), 150),
)

#: The Google Analytics tracker (most popular in both clouds).
GA_TRACKER = TrackerSpec("google-analytics", "http://www.google-analytics.com/ga")


class GoogleAnalyticsRegistry:
    """Issues ``UA-<account>-<profile>`` IDs with the per-account profile
    distribution of §8.3: ~93.5% of accounts use a single profile, ~4.8%
    two, and a small tail up to tens of profiles."""

    _PROFILE_COUNTS: tuple[tuple[int, float], ...] = (
        (1, 0.935),
        (2, 0.048),
        (3, 0.007),
        (5, 0.004),
        (8, 0.003),
        (14, 0.002),
        (35, 0.001),
    )

    def __init__(self, rng: random.Random, first_account: int = 10_000):
        self._rng = rng
        self._next_account = first_account
        self._open: list[tuple[int, int, int]] = []  # (account, next_profile, max)

    def issue(self) -> str:
        """Return a fresh GA ID, reusing an account while it has unused
        profile slots so multi-site owners emerge naturally."""
        if self._open and self._rng.random() < 0.5:
            index = self._rng.randrange(len(self._open))
            account, next_profile, limit = self._open[index]
            if next_profile + 1 >= limit:
                self._open.pop(index)
            else:
                self._open[index] = (account, next_profile + 1, limit)
            return f"UA-{account}-{next_profile}"
        account = self._next_account
        self._next_account += 1
        limit = self._sample_profile_count()
        if limit > 1:
            self._open.append((account, 2, limit + 1))
        return f"UA-{account}-1"

    def _sample_profile_count(self) -> int:
        roll = self._rng.random()
        acc = 0.0
        for count, probability in self._PROFILE_COUNTS:
            acc += probability
            if roll <= acc:
                return count
        return 1


_ADJECTIVES = (
    "rapid swift bright global prime nimble quantum silver urban vivid "
    "crimson solid lunar polar amber coastal digital open modular arctic "
    "golden emerald northern keen astute clever brisk stellar cosmic"
).split()

_NOUNS = (
    "analytics commerce ledger beacon harbor studio forge vault relay "
    "pipeline garden market signal atlas summit bridge lantern orchard "
    "foundry circuit compass meadow quarry harvest anchor prism canvas"
).split()

_TOPICS = (
    "dashboard platform service portal storefront tracker toolkit suite "
    "exchange network hub engine console monitor planner registry"
).split()

_BODY_VOCABULARY = (
    "customers deploy scalable workloads across regions while the control "
    "plane balances traffic and replicates state our team ships features "
    "weekly with automated pipelines monitoring alerts capacity billing "
    "reports integrate directly into the console users create projects "
    "invite collaborators configure webhooks and export data through the "
    "public api documentation tutorials and community forums help new "
    "operators onboard quickly security reviews audit logs encryption at "
    "rest and role based access keep tenant data isolated pricing scales "
    "with usage and reserved plans reduce long term cost the roadmap "
    "includes realtime streams smarter caching and regional failover"
).split()

#: Canonical default/test pages (the clusters the cleaning step excludes).
DEFAULT_PAGES: dict[str, tuple[str, str]] = {
    "Apache": (
        "Apache2 Ubuntu Default Page: It works",
        "This is the default welcome page used to test the correct "
        "operation of the Apache2 server after installation.",
    ),
    "nginx": (
        "Welcome to nginx!",
        "If you see this page, the nginx web server is successfully "
        "installed and working. Further configuration is required.",
    ),
    "Microsoft-IIS": (
        "IIS7",
        "Internet Information Services welcome page. Server ready.",
    ),
    "lighttpd": (
        "Placeholder page",
        "The owner of this web site has not put up any web pages yet.",
    ),
}

_ERROR_TITLES: dict[str, str] = {
    "404": "404 Not Found",
    "403": "403 Forbidden",
    "500": "500 Internal Server Error",
    "503": "Service Temporarily Unavailable - Error",
}


@dataclass(frozen=True)
class ContentProfile:
    """Everything needed to render a service's top-level page."""

    title: str
    description: str
    keywords: str
    template: str               # generator meta tag value ("" = none)
    analytics_id: str           # "" = no GA
    tracker_scripts: tuple[str, ...] = ()
    links: tuple[str, ...] = ()          # ordinary external links
    malicious_links: tuple[str, ...] = ()  # links flagged by blacklists
    #: Internal paths linked from the home page (for deep crawling).
    subpages: tuple[str, ...] = ()
    body_seed: int = 0
    body_tokens: int = 120
    content_type: str = "text/html"
    status_code: int = 200
    robots_disallow: bool = False
    domain: str = ""

    def with_malicious_links(self, links: tuple[str, ...]) -> "ContentProfile":
        return replace(self, malicious_links=links)

    def render(self, major: int = 0, revision: int = 0) -> str:
        """Render the page body deterministically.

        *major* reshuffles the whole body (a redesign); *revision* swaps a
        handful of tokens, leaving the simhash within a few bits.
        """
        if self.content_type == "application/json":
            return self._render_json(major, revision)
        if self.content_type in ("text/plain",):
            return " ".join(self._body_words(major, revision))
        if self.content_type in ("application/xml", "text/xml"):
            return self._render_xml(major, revision)
        return self._render_html(major, revision)

    def _body_words(self, major: int, revision: int) -> list[str]:
        rng = random.Random(self.body_seed * 1_000_003 + major)
        words = [rng.choice(_BODY_VOCABULARY) for _ in range(self.body_tokens)]
        if revision:
            # One-token edits keep successive revisions a few simhash
            # bits apart (real minor page edits move large pages by only
            # a couple of bits; our synthetic pages are shorter).
            edit_rng = random.Random(
                self.body_seed * 7_777_777 + major * 97 + revision
            )
            position = edit_rng.randrange(len(words))
            words[position] = edit_rng.choice(_BODY_VOCABULARY)
        return words

    def _render_html(self, major: int, revision: int) -> str:
        head: list[str] = ["<html><head>", f"<title>{self.title}</title>"]
        if self.description:
            head.append(f'<meta name="description" content="{self.description}">')
        if self.keywords:
            head.append(f'<meta name="keywords" content="{self.keywords}">')
        if self.template:
            head.append(f'<meta name="generator" content="{self.template}">')
        head.append("</head><body>")
        parts = head
        parts.append(f"<h1>{self.title}</h1>")
        words = self._body_words(major, revision)
        for start in range(0, len(words), 40):
            parts.append("<p>" + " ".join(words[start : start + 40]) + "</p>")
        for path in self.subpages:
            parts.append(f'<a href="{path}">{path.strip("/")}</a>')
        for url in self.links + self.malicious_links:
            parts.append(f'<a href="{url}">{url.split("//")[-1][:40]}</a>')
        if self.analytics_id:
            parts.append(
                "<script type=\"text/javascript\">var _gaq=_gaq||[];"
                f"_gaq.push(['_setAccount', '{self.analytics_id}']);"
                "(function(){var ga=document.createElement('script');"
                f"ga.src='{GA_TRACKER.fingerprint_url}.js';}})();</script>"
            )
        parts.extend(self.tracker_scripts)
        if self.domain:
            parts.append(f"<!-- served for {self.domain} -->")
        parts.append("</body></html>")
        return "\n".join(parts)

    def render_subpage(self, path: str, major: int = 0,
                       revision: int = 0) -> str:
        """Render an internal page; raises KeyError for unknown paths."""
        if path not in self.subpages:
            raise KeyError(path)
        section = path.strip("/").capitalize()
        seed_shift = sum(ord(c) for c in path) + 17
        derived = replace(
            self,
            title=f"{self.title} — {section}",
            body_seed=self.body_seed + seed_shift,
            body_tokens=max(40, self.body_tokens // 2),
            subpages=(),
            links=(),
            malicious_links=(),
            tracker_scripts=(),
        )
        return derived.render(major, revision)

    def _render_json(self, major: int, revision: int) -> str:
        words = self._body_words(major, revision)
        return (
            '{"service": "%s", "status": "ok", "detail": "%s"}'
            % (self.title, " ".join(words[:30]))
        )

    def _render_xml(self, major: int, revision: int) -> str:
        words = self._body_words(major, revision)
        return (
            f"<?xml version=\"1.0\"?><service><name>{self.title}</name>"
            f"<detail>{' '.join(words[:30])}</detail></service>"
        )


class ContentFactory:
    """Draws coherent content profiles for simulated services."""

    #: Fractions of pages per content type, shaped like Table 5.
    _CONTENT_TYPES: tuple[tuple[str, float], ...] = (
        ("text/html", 0.959),
        ("text/plain", 0.021),
        ("application/json", 0.010),
        ("application/xml", 0.006),
        ("text/xml", 0.003),
    )

    #: §8.3: 77% of tracker-using pages embed one tracker, 16% two, 6%
    #: three (EC2); plus the share of pages using any tracker at all.
    _EXTRA_TRACKER_COUNTS: tuple[tuple[int, float], ...] = (
        (0, 0.77),
        (1, 0.16),
        (2, 0.06),
        (3, 0.01),
    )

    def __init__(self, rng: random.Random, *, tracker_share: float = 0.25,
                 robots_disallow_rate: float = 0.01):
        self._rng = rng
        self._ga = GoogleAnalyticsRegistry(rng)
        self._tracker_share = tracker_share
        self._robots_disallow_rate = robots_disallow_rate
        from .software import WeightedChoice  # local import avoids a cycle

        self._trackers = WeightedChoice(list(TRACKER_CATALOG))
        self._content_types = WeightedChoice(list(self._CONTENT_TYPES))

    def _site_name(self) -> tuple[str, str]:
        rng = self._rng
        name = f"{rng.choice(_ADJECTIVES)}{rng.choice(_NOUNS)}"
        title = (
            f"{name.capitalize()} {rng.choice(_TOPICS).capitalize()}"
            f" {rng.randrange(10_000)}"
        )
        return name, title

    def make_profile(self, *, template: str = "", status_behavior: str = "200",
                     default_family: str = "") -> ContentProfile:
        """Create a fresh content profile.

        ``default_family`` forces a canonical default server page;
        ``status_behavior`` of "404"/"403"/"500"/"503" produces error-page
        services (virtual hosts that refuse bare-IP requests, §4).
        """
        rng = self._rng
        if default_family:
            family = default_family if default_family in DEFAULT_PAGES else "Apache"
            title, blurb = DEFAULT_PAGES[family]
            return ContentProfile(
                title=title,
                description=blurb,
                keywords="",
                template="",
                analytics_id="",
                # crc32, not hash(): body_seed must not depend on
                # PYTHONHASHSEED or simhashes drift across processes.
                body_seed=zlib.crc32(family.encode()) & 0x7FFFFFFF,
                body_tokens=60,
                status_code=200,
            )
        name, title = self._site_name()
        domain = f"www.{name}{rng.randrange(1000)}.com"
        if status_behavior != "200":
            status_code = int(status_behavior)
            return ContentProfile(
                title=_ERROR_TITLES.get(status_behavior, "Error"),
                description="",
                keywords="",
                template="",
                analytics_id="",
                body_seed=rng.getrandbits(31),
                body_tokens=30,
                status_code=status_code,
                domain=domain if rng.random() < 0.5 else "",
            )
        keywords = ",".join(
            sorted({rng.choice(_NOUNS), rng.choice(_TOPICS), rng.choice(_ADJECTIVES)})
        )
        analytics_id = ""
        tracker_scripts: list[str] = []
        if rng.random() < self._tracker_share:
            analytics_id = self._ga.issue()
            extra = self._sample_extra_trackers()
            chosen: set[str] = set()
            while len(chosen) < extra:
                spec = self._trackers.sample(rng)
                if spec.name not in chosen:
                    chosen.add(spec.name)
                    tracker_scripts.append(spec.script(name))
        links = tuple(
            f"http://partner{rng.randrange(500)}.example.org/{rng.choice(_NOUNS)}"
            for _ in range(rng.randrange(4))
        )
        subpage_pool = ("/about", "/products", "/pricing", "/blog",
                        "/contact", "/docs")
        subpages = tuple(
            rng.sample(subpage_pool, rng.randrange(0, 4))
        )
        return ContentProfile(
            title=title,
            description=f"{title} — {rng.choice(_BODY_VOCABULARY)} "
                        f"{rng.choice(_BODY_VOCABULARY)}",
            keywords=keywords,
            template=template,
            analytics_id=analytics_id,
            tracker_scripts=tuple(tracker_scripts),
            links=links,
            body_seed=rng.getrandbits(31),
            body_tokens=160 + rng.randrange(200),
            content_type=self._content_types.sample(rng),
            robots_disallow=rng.random() < self._robots_disallow_rate,
            domain=domain,
            subpages=subpages,
        )

    def _sample_extra_trackers(self) -> int:
        roll = self._rng.random()
        acc = 0.0
        for count, probability in self._EXTRA_TRACKER_COUNTS:
            acc += probability
            if roll <= acc:
                return count
        return 0
