"""Provider topologies: regions, advertised prefixes, VPC/classic split.

The paper seeds WhoWas with the published EC2 and Azure address ranges
(4,702,208 and 495,872 IPs; §6) and uses cartography to label every EC2
/22 prefix as VPC or classic (Table 2).  We synthesise topologies with
the same *structure* — per-region prefix lists with region-specific VPC
shares — at a configurable scale.

Region weights follow the relative region sizes implied by Table 2
(prefix counts ÷ VPC percentage), and each region's ``vpc_fraction``
matches the "% all IPs in region" column.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .addressing import AddressSpace, Prefix, Region

__all__ = [
    "NetKind",
    "RegionSpec",
    "ProviderSpec",
    "ProviderTopology",
    "EC2_SPEC",
    "AZURE_SPEC",
]


class NetKind:
    """Networking kind labels for prefixes and deployments."""

    CLASSIC = "classic"
    VPC = "vpc"


@dataclass(frozen=True)
class RegionSpec:
    """A region's share of the provider's space and its VPC share."""

    name: str
    weight: float          # fraction of the provider's total IPs
    vpc_fraction: float    # fraction of the region's prefixes that are VPC


@dataclass(frozen=True)
class ProviderSpec:
    """Static description of a cloud provider."""

    name: str
    regions: tuple[RegionSpec, ...]
    supports_vpc: bool
    #: First octet of the synthetic address space (EC2 ≈ 54.x, Azure ≈ 137.x).
    base_network: str
    #: Prefix granularity for allocation and cartography.  The paper maps
    #: EC2 at /22; None (the default) picks a length so the space holds
    #: roughly 256 prefixes, keeping per-region VPC shares meaningful at
    #: any scale.
    prefix_length: int | None = None

    def build(self, total_ips: int, seed: int = 0) -> "ProviderTopology":
        """Materialise a topology with approximately *total_ips* addresses."""
        return ProviderTopology(self, total_ips, seed)

    def resolve_prefix_length(self, total_ips: int) -> int:
        if self.prefix_length is not None:
            return self.prefix_length
        length = 32
        while length > 22 and (1 << (32 - length)) < total_ips // 256:
            length -= 1
        return min(length, 28)


class ProviderTopology:
    """A concrete, scaled address layout for one provider.

    Exposes the :class:`AddressSpace`, the networking kind of every
    prefix, and region lookups.  Prefixes are carved contiguously from
    ``base_network``; region order is fixed so layouts are reproducible.
    """

    def __init__(self, spec: ProviderSpec, total_ips: int, seed: int = 0):
        if total_ips <= 0:
            raise ValueError("total_ips must be positive")
        self.spec = spec
        self._prefix_length = spec.resolve_prefix_length(total_ips)
        prefix_size = 1 << (32 - self._prefix_length)
        total_prefixes = max(len(spec.regions), total_ips // prefix_size)
        rng = random.Random(seed ^ 0x5EED)

        base = _parse_base(spec.base_network)
        regions: list[Region] = []
        self._kind_by_prefix: dict[Prefix, str] = {}
        cursor = base
        weight_sum = sum(r.weight for r in spec.regions)
        for region_spec in spec.regions:
            count = max(1, round(total_prefixes * region_spec.weight / weight_sum))
            prefixes = []
            for _ in range(count):
                prefix = Prefix(cursor, self._prefix_length)
                prefixes.append(prefix)
                cursor += prefix_size
            vpc_count = (
                round(count * region_spec.vpc_fraction) if spec.supports_vpc else 0
            )
            vpc_set = set(rng.sample(range(count), vpc_count)) if vpc_count else set()
            for index, prefix in enumerate(prefixes):
                kind = NetKind.VPC if index in vpc_set else NetKind.CLASSIC
                self._kind_by_prefix[prefix] = kind
            regions.append(Region(region_spec.name, prefixes))
        self.space = AddressSpace(regions)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def prefix_length(self) -> int:
        return self._prefix_length

    def kind_of_prefix(self, prefix: Prefix) -> str:
        return self._kind_by_prefix[prefix]

    def kind_of(self, address: int) -> str:
        """Networking kind (classic/vpc) of an address."""
        prefix = self.space.prefix_of(address)
        if prefix is None:
            raise KeyError(f"address not in {self.name} space")
        return self._kind_by_prefix[prefix]

    def region_of(self, address: int) -> str:
        region = self.space.region_of(address)
        if region is None:
            raise KeyError(f"address not in {self.name} space")
        return region.name

    def addresses_by_kind(self, region_name: str) -> dict[str, list[int]]:
        """All addresses of a region, bucketed by networking kind."""
        region = self.space.region(region_name)
        buckets: dict[str, list[int]] = {NetKind.CLASSIC: [], NetKind.VPC: []}
        for prefix in region.prefixes:
            buckets[self._kind_by_prefix[prefix]].extend(prefix)
        return buckets

    def vpc_prefix_summary(self) -> dict[str, tuple[int, float]]:
        """Ground truth for Table 2: per region, the number of VPC
        prefixes and the VPC share of the region's IPs."""
        summary: dict[str, tuple[int, float]] = {}
        for region in self.space.regions:
            vpc = sum(
                1 for p in region.prefixes
                if self._kind_by_prefix[p] == NetKind.VPC
            )
            vpc_ips = sum(
                p.size for p in region.prefixes
                if self._kind_by_prefix[p] == NetKind.VPC
            )
            share = (vpc_ips / region.size * 100.0) if region.size else 0.0
            summary[region.name] = (vpc, share)
        return summary


def _parse_base(dotted: str) -> int:
    parts = [int(p) for p in dotted.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"bad base network: {dotted!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


#: EC2 regions: weights from region sizes implied by Table 2, VPC shares
#: from its "% all IPs in region" column.
EC2_SPEC = ProviderSpec(
    name="EC2",
    regions=(
        RegionSpec("USEast", 0.445, 0.137),
        RegionSpec("USWest_Oregon", 0.153, 0.364),
        RegionSpec("EU", 0.130, 0.208),
        RegionSpec("AsiaTokyo", 0.067, 0.320),
        RegionSpec("USWest_NC", 0.070, 0.225),
        RegionSpec("AsiaSingapore", 0.053, 0.339),
        RegionSpec("AsiaSydney", 0.042, 0.333),
        RegionSpec("SouthAmerica", 0.040, 0.319),
    ),
    supports_vpc=True,
    base_network="54.0.0.0",
)

#: Azure offers only on-demand instances and no classic/VPC split the
#: cartography can observe; regions approximate the 2013 datacenters.
AZURE_SPEC = ProviderSpec(
    name="Azure",
    regions=(
        RegionSpec("US_East", 0.30, 0.0),
        RegionSpec("US_West", 0.22, 0.0),
        RegionSpec("Europe_West", 0.18, 0.0),
        RegionSpec("Europe_North", 0.12, 0.0),
        RegionSpec("Asia_East", 0.10, 0.0),
        RegionSpec("Asia_SouthEast", 0.08, 0.0),
    ),
    supports_vpc=False,
    base_network="137.116.0.0",
)
