"""IPv4 address-space modelling for cloud providers.

EC2 and Azure publish the IP ranges their services use; WhoWas is seeded
with those ranges (§4, §6).  This module provides compact representations
of provider address spaces: CIDR prefixes grouped into named regions, with
fast membership tests, prefix lookups, and deterministic enumeration.

Addresses are held as integers throughout (an ``int`` per IPv4 address);
dotted-quad strings only appear at the edges, mirroring how a scanner
working at millions of addresses must avoid per-address object overhead.
"""

from __future__ import annotations

import ipaddress
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "Prefix",
    "Region",
    "AddressSpace",
]


def ip_to_int(address: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer."""
    return int(ipaddress.IPv4Address(address))


def int_to_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    return str(ipaddress.IPv4Address(value))


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix: ``network`` is the integer base address."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if self.network & (self.size - 1):
            raise ValueError(
                f"network {int_to_ip(self.network)} not aligned to /{self.length}"
            )

    @classmethod
    def parse(cls, cidr: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        network = ipaddress.IPv4Network(cidr, strict=True)
        return cls(int(network.network_address), network.prefixlen)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network + self.size - 1

    def __contains__(self, address: int) -> bool:
        return self.first <= address <= self.last

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Yield the aligned sub-prefixes of the given (longer) length."""
        if length < self.length:
            raise ValueError(f"/{length} is shorter than /{self.length}")
        step = 1 << (32 - length)
        for base in range(self.first, self.last + 1, step):
            yield Prefix(base, length)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


@dataclass
class Region:
    """A named provider region owning a set of disjoint prefixes."""

    name: str
    prefixes: list[Prefix] = field(default_factory=list)

    @classmethod
    def from_cidrs(cls, name: str, cidrs: Iterable[str]) -> "Region":
        return cls(name, sorted(Prefix.parse(c) for c in cidrs))

    @property
    def size(self) -> int:
        return sum(p.size for p in self.prefixes)

    def addresses(self) -> Iterator[int]:
        for prefix in sorted(self.prefixes):
            yield from prefix

    def __contains__(self, address: int) -> bool:
        return any(address in p for p in self.prefixes)


class AddressSpace:
    """The full advertised address space of a provider.

    Supports O(log n) membership/region/prefix lookup and O(1) indexed
    access (the *k*-th address of the space), which the simulator uses to
    draw uniform addresses without materialising millions of integers.
    """

    def __init__(self, regions: Iterable[Region]):
        self.regions = list(regions)
        rows: list[tuple[int, int, Prefix, Region]] = []
        for region in self.regions:
            for prefix in region.prefixes:
                rows.append((prefix.first, prefix.last, prefix, region))
        rows.sort(key=lambda row: row[0])
        for (_, last, prefix, _), (first, _, other, _) in zip(rows, rows[1:]):
            if first <= last:
                raise ValueError(f"overlapping prefixes: {prefix} and {other}")
        self._rows = rows
        self._starts = [row[0] for row in rows]
        # cumulative[i] = number of addresses in rows[:i]
        self._cumulative = [0]
        for first, last, _, _ in rows:
            self._cumulative.append(self._cumulative[-1] + (last - first + 1))

    @property
    def size(self) -> int:
        """Total number of advertised addresses."""
        return self._cumulative[-1]

    def __len__(self) -> int:
        return self.size

    def _row_for(self, address: int) -> tuple[int, int, Prefix, Region] | None:
        index = bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        row = self._rows[index]
        if address > row[1]:
            return None
        return row

    def __contains__(self, address: int) -> bool:
        return self._row_for(address) is not None

    def region_of(self, address: int) -> Region | None:
        """Return the region owning *address*, or None."""
        row = self._row_for(address)
        return row[3] if row else None

    def prefix_of(self, address: int) -> Prefix | None:
        """Return the advertised prefix containing *address*, or None."""
        row = self._row_for(address)
        return row[2] if row else None

    def address_at(self, index: int) -> int:
        """Return the *index*-th address in ascending order."""
        if not 0 <= index < self.size:
            raise IndexError(f"address index {index} out of range")
        row_index = bisect_right(self._cumulative, index) - 1
        first, _, _, _ = self._rows[row_index]
        return first + (index - self._cumulative[row_index])

    def index_of(self, address: int) -> int:
        """Inverse of :meth:`address_at`; raises KeyError if absent."""
        index = bisect_right(self._starts, address) - 1
        if index < 0 or address > self._rows[index][1]:
            raise KeyError(int_to_ip(address))
        return self._cumulative[index] + (address - self._rows[index][0])

    def addresses(self) -> Iterator[int]:
        """Yield every advertised address in ascending order."""
        for first, last, _, _ in self._rows:
            yield from range(first, last + 1)

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)
