"""Web software ecosystem distributions (§8.3 of the paper).

The simulator assigns every web service a server product + version, an
optional backend technology, and an optional site template.  The weights
below are taken from the shares the paper measured on EC2 and Azure, so
the census analysis (``repro.analysis.census``) reproduces the same
rankings: Apache/nginx/IIS ordering on EC2, IIS dominance on Azure,
pervasive stale versions, and the SERT-listed vulnerable servers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generic, Sequence, TypeVar

__all__ = [
    "WeightedChoice",
    "SoftwareStack",
    "SoftwareCatalog",
    "EC2_CATALOG",
    "AZURE_CATALOG",
    "VULNERABLE_SERVERS",
    "VULNERABLE_WORDPRESS_MAX",
]

T = TypeVar("T")


class WeightedChoice(Generic[T]):
    """A reusable weighted categorical distribution."""

    def __init__(self, weighted_items: Sequence[tuple[T, float]]):
        if not weighted_items:
            raise ValueError("weighted_items must not be empty")
        items, weights = zip(*weighted_items)
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.items: tuple[T, ...] = tuple(items)
        self.weights: tuple[float, ...] = tuple(w / total for w in weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in self.weights:
            acc += weight
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> T:
        roll = rng.random()
        for item, bound in zip(self.items, self._cumulative):
            if roll <= bound:
                return item
        return self.items[-1]

    def probability(self, item: T) -> float:
        try:
            return self.weights[self.items.index(item)]
        except ValueError:
            return 0.0


@dataclass(frozen=True)
class SoftwareStack:
    """The software a single web service runs."""

    server: str          # full Server header value, e.g. "Apache/2.2.22"
    server_family: str   # "Apache", "nginx", "Microsoft-IIS", ...
    backend: str         # x-powered-by value, or "" if not advertised
    template: str        # generator template, e.g. "WordPress 3.5.1", or ""

    @property
    def advertises_backend(self) -> bool:
        return bool(self.backend)

    @property
    def uses_template(self) -> bool:
        return bool(self.template)


#: SSH banner distribution for instances exposing port 22 (the paper's
#: future-work item "analyze non-web services"; version staleness on
#: sshd mirrors the web-software staleness of §8.3).
SSH_BANNERS = WeightedChoice(
    [
        ("SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1.1", 28.0),
        ("SSH-2.0-OpenSSH_5.3", 18.0),
        ("SSH-2.0-OpenSSH_6.0p1 Debian-4+deb7u2", 14.0),
        ("SSH-2.0-OpenSSH_5.9", 10.0),
        ("SSH-2.0-OpenSSH_6.2", 7.0),
        ("SSH-2.0-OpenSSH_4.3", 4.0),
        ("SSH-2.0-OpenSSH_6.4", 3.0),
        ("SSH-2.0-dropbear_2012.55", 3.0),
        ("SSH-2.0-dropbear_0.52", 1.5),
        ("SSH-1.99-OpenSSH_3.9p1", 0.5),
        ("SSH-2.0-WinSSHD 5.05", 1.0),
    ]
)

#: Server versions carrying known vulnerabilities; seven of SERT's top-10
#: most vulnerable servers were observed in both clouds (§8.3).
VULNERABLE_SERVERS: frozenset[str] = frozenset(
    {
        "Microsoft-IIS/6.0",
        "Apache/1.3.42",
        "Apache/2.2.22",
        "Apache/2.2.24 (Unix) mod_ssl/2.2.24 OpenSSL/1.0.0-fips "
        "mod_auth_passthrough/2.1 mod_bwlimited/1.4 FrontPage/5.0.2.2635",
        "Apache/2.2.3",
        "Microsoft-IIS/5.0",
        "Apache/2.0.63",
    }
)

#: WordPress versions below 3.6 contain known XSS vulnerabilities
#: (CVE-2013-4338 et al.; §8.3).
VULNERABLE_WORDPRESS_MAX = (3, 6)


def _apache_versions() -> WeightedChoice[str]:
    # §8.3: 24.6% Apache/2.2.22, 15.0% Apache-Coyote/1.1, 7.6% 2.2.25,
    # >40% on 2.2.*, a handful of 1.3.*, and rare 2.4.7 adopters.
    return WeightedChoice(
        [
            ("Apache/2.2.22", 24.6),
            ("Apache-Coyote/1.1", 15.0),
            ("Apache/2.2.25", 7.6),
            ("Apache/2.2.15", 6.5),
            ("Apache/2.2.3", 5.0),
            ("Apache/2.2.14", 4.5),
            ("Apache", 12.0),
            ("Apache/2.4.6", 3.5),
            ("Apache/2.4.7", 0.4),
            ("Apache/2.0.63", 0.6),
            ("Apache/1.3.42", 0.2),
            (
                "Apache/2.2.24 (Unix) mod_ssl/2.2.24 OpenSSL/1.0.0-fips "
                "mod_auth_passthrough/2.1 mod_bwlimited/1.4 FrontPage/5.0.2.2635",
                0.2,
            ),
            ("Apache/2.2.26", 5.0),
            ("Apache/2.4.4", 2.0),
        ]
    )


def _nginx_versions() -> WeightedChoice[str]:
    return WeightedChoice(
        [
            ("nginx/1.4.1", 20.0),
            ("nginx/1.1.19", 18.0),
            ("nginx", 25.0),
            ("nginx/1.4.4", 12.0),
            ("nginx/1.2.1", 10.0),
            ("nginx/0.7.67", 3.0),
            ("nginx/1.5.8", 2.0),
        ]
    )


def _iis_versions() -> WeightedChoice[str]:
    # §8.3 (Azure): IIS 8.0 39.0%, 7.5 23.7%, 7.0 19.8%, 8.5 3.4%,
    # and a long tail including the vulnerable 6.0.
    return WeightedChoice(
        [
            ("Microsoft-IIS/8.0", 39.0),
            ("Microsoft-IIS/7.5", 23.7),
            ("Microsoft-IIS/7.0", 19.8),
            ("Microsoft-IIS/8.5", 3.4),
            ("Microsoft-IIS/6.0", 2.5),
            ("Microsoft-IIS/5.0", 0.3),
            ("Microsoft-IIS/7.5 (Windows Server 2008 R2)", 11.3),
        ]
    )


def _php_versions() -> WeightedChoice[str]:
    # §8.3: 60% of PHP users on 5.3.*; top releases 5.3.10 / 5.3.27 / 5.3.3.
    return WeightedChoice(
        [
            ("PHP/5.3.10", 24.5),
            ("PHP/5.3.27", 16.2),
            ("PHP/5.3.3", 9.7),
            ("PHP/5.3.2", 5.0),
            ("PHP/5.3.29", 4.6),
            ("PHP/5.4.12", 9.0),
            ("PHP/5.4.19", 8.0),
            ("PHP/5.4.23", 1.5),
            ("PHP/5.2.17", 6.0),
            ("PHP/5.5.6", 3.5),
            ("PHP/5.4.4", 12.0),
        ]
    )


def _wordpress_versions() -> WeightedChoice[str]:
    # §8.3: 3.5.* and 3.6.* dominate; >68% run vulnerable (<3.6) versions;
    # 3.7.*/3.8.* adoption trails their Oct/Dec 2013 releases.
    return WeightedChoice(
        [
            ("WordPress 3.5.1", 28.0),
            ("WordPress 3.5.2", 9.0),
            ("WordPress 3.6", 14.0),
            ("WordPress 3.6.1", 13.0),
            ("WordPress 3.4.2", 8.0),
            ("WordPress 3.3.1", 5.0),
            ("WordPress 3.2.1", 3.0),
            ("WordPress 3.7.1", 12.0),
            ("WordPress 3.8", 8.0),
        ]
    )


@dataclass(frozen=True)
class SoftwareCatalog:
    """Per-cloud distributions from which service stacks are drawn."""

    #: Probability the Server header is present & parseable at all
    #: (EC2: 89.9% of available IPs identified).
    server_identified: float
    server_families: WeightedChoice[str]
    versions_by_family: dict[str, WeightedChoice[str]]
    #: Probability the backend advertises itself via x-powered-by
    #: (EC2: ~32% of servers).
    backend_identified: float
    backends: WeightedChoice[str]
    #: Probability a page declares a generator template (EC2: ~3%).
    template_identified: float
    templates: WeightedChoice[str]

    def sample_stack(self, rng: random.Random) -> SoftwareStack:
        """Draw one service's software stack."""
        if rng.random() < self.server_identified:
            family = self.server_families.sample(rng)
            versions = self.versions_by_family.get(family)
            server = versions.sample(rng) if versions else family
        else:
            family = ""
            server = ""
        backend = ""
        if rng.random() < self.backend_identified:
            backend_family = self.backends.sample(rng)
            if backend_family == "PHP":
                backend = _PHP_VERSIONS.sample(rng)
            elif backend_family == "ASP.NET":
                backend = "ASP.NET"
            else:
                backend = backend_family
        template = ""
        if rng.random() < self.template_identified:
            template_family = self.templates.sample(rng)
            if template_family == "WordPress":
                template = _WORDPRESS_VERSIONS.sample(rng)
            elif template_family == "Joomla!":
                template = "Joomla! 1.5 - Open Source Content Management"
            elif template_family == "Drupal":
                template = "Drupal 7 (http://drupal.org)"
            else:
                template = template_family
        return SoftwareStack(
            server=server, server_family=family, backend=backend, template=template
        )

    def sample_stack_for_family(self, rng: random.Random,
                                family: str) -> SoftwareStack:
        """Draw a stack pinned to one server family (e.g. "MochiWeb"
        for the paper's dominant PaaS provider, §8.3)."""
        versions = self.versions_by_family.get(family)
        server = versions.sample(rng) if versions else family
        return SoftwareStack(
            server=server, server_family=family, backend="", template=""
        )


_PHP_VERSIONS = _php_versions()
_WORDPRESS_VERSIONS = _wordpress_versions()


def _ec2_catalog() -> SoftwareCatalog:
    return SoftwareCatalog(
        server_identified=0.899,
        server_families=WeightedChoice(
            [
                ("Apache", 55.2),
                ("nginx", 21.2),
                ("Microsoft-IIS", 12.2),
                ("MochiWeb", 4.4),
                ("lighttpd", 2.0),
                ("Jetty", 1.5),
                ("gunicorn", 1.5),
                ("LiteSpeed", 1.0),
                ("Cowboy", 1.0),
            ]
        ),
        versions_by_family={
            "Apache": _apache_versions(),
            "nginx": _nginx_versions(),
            "Microsoft-IIS": _iis_versions(),
            "MochiWeb": WeightedChoice([("MochiWeb/1.0 (Any of you quaids got a smint?)", 1.0)]),
            "lighttpd": WeightedChoice([("lighttpd/1.4.28", 0.7), ("lighttpd/1.4.31", 0.3)]),
            "Jetty": WeightedChoice([("Jetty(8.1.13.v20130916)", 1.0)]),
            "gunicorn": WeightedChoice([("gunicorn/18.0", 0.6), ("gunicorn/0.17.4", 0.4)]),
            "LiteSpeed": WeightedChoice([("LiteSpeed", 1.0)]),
            "Cowboy": WeightedChoice([("Cowboy", 1.0)]),
        },
        backend_identified=0.32,
        backends=WeightedChoice(
            [
                ("PHP", 52.6),
                ("ASP.NET", 29.0),
                ("Phusion Passenger 4.0.29", 8.1),
                ("Express", 3.5),
                ("Servlet/3.0", 3.0),
                ("PleskLin", 2.0),
                ("mod_rails", 1.8),
            ]
        ),
        template_identified=0.038,
        templates=WeightedChoice(
            [
                ("WordPress", 71.1),
                ("Joomla!", 9.7),
                ("Drupal", 4.1),
                ("MediaWiki 1.21.2", 3.0),
                ("TYPO3 4.7 CMS", 2.5),
                ("vBulletin 4.2.1", 2.0),
                ("Discourse", 1.5),
                ("Blogger", 6.1),
            ]
        ),
    )


def _azure_catalog() -> SoftwareCatalog:
    return SoftwareCatalog(
        server_identified=0.92,
        server_families=WeightedChoice(
            [
                ("Microsoft-IIS", 89.0),
                ("Apache", 7.7),
                ("nginx", 1.7),
                ("Jetty", 0.8),
                ("lighttpd", 0.8),
            ]
        ),
        versions_by_family={
            "Microsoft-IIS": _iis_versions(),
            "Apache": _apache_versions(),
            "nginx": _nginx_versions(),
            "Jetty": WeightedChoice([("Jetty(8.1.13.v20130916)", 1.0)]),
            "lighttpd": WeightedChoice([("lighttpd/1.4.28", 1.0)]),
        },
        backend_identified=0.45,
        backends=WeightedChoice(
            [
                ("ASP.NET", 94.2),
                ("PHP", 4.3),
                ("Express", 0.6),
                ("Servlet/3.0", 0.9),
            ]
        ),
        template_identified=0.012,
        templates=WeightedChoice(
            [
                ("WordPress", 55.0),
                ("Joomla!", 12.0),
                ("Drupal", 6.0),
                ("DotNetNuke", 15.0),
                ("Orchard", 8.0),
                ("Umbraco", 4.0),
            ]
        ),
    )


EC2_CATALOG = _ec2_catalog()
AZURE_CATALOG = _azure_catalog()
