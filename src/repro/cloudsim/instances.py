"""IP pools and deployments: dynamic public-IP assignment.

IaaS public IPs are dynamic by default (§2): released when an instance
stops and reassignable to a different customer.  :class:`IpPool` models a
region's free list with O(1) random acquire/release; a
:class:`Deployment` records which service holds an IP and since when.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .providers import NetKind

__all__ = ["IpPool", "Deployment"]


@dataclass
class Deployment:
    """A service's hold on one public IP."""

    service_id: int
    ip: int
    kind: str          # NetKind.CLASSIC or NetKind.VPC
    since_day: int


class IpPool:
    """Free lists of a region's addresses, bucketed by networking kind.

    Acquisition picks a uniformly random free address (swap-pop), which
    reproduces the IP-churn property the paper studies: a released IP can
    reappear under a different owner in a later round.
    """

    def __init__(self, addresses_by_kind: dict[str, list[int]], rng: random.Random):
        self._rng = rng
        self._free: dict[str, list[int]] = {
            kind: list(addresses) for kind, addresses in addresses_by_kind.items()
        }
        self._kind_of: dict[int, str] = {}
        for kind, addresses in self._free.items():
            for address in addresses:
                self._kind_of[address] = kind

    def available(self, kind: str) -> int:
        """Number of free addresses of the given kind."""
        return len(self._free.get(kind, ()))

    def total_free(self) -> int:
        return sum(len(v) for v in self._free.values())

    def acquire(self, kind: str) -> int | None:
        """Take a random free address of *kind*; None if exhausted.

        A ``mixed`` request prefers classic but falls back to VPC,
        mirroring tenants that span both networking modes.
        """
        if kind == "mixed":
            for candidate in (NetKind.CLASSIC, NetKind.VPC):
                address = self.acquire(candidate)
                if address is not None:
                    return address
            return None
        free = self._free.get(kind)
        if not free:
            # Fall back to the other kind rather than failing the tenant;
            # real clouds never refuse an instance for lack of one label.
            other = NetKind.VPC if kind == NetKind.CLASSIC else NetKind.CLASSIC
            free = self._free.get(other)
            if not free:
                return None
        index = self._rng.randrange(len(free))
        free[index], free[-1] = free[-1], free[index]
        return free.pop()

    def release(self, address: int) -> None:
        """Return an address to its kind's free list."""
        kind = self._kind_of.get(address)
        if kind is None:
            raise KeyError(f"address {address} does not belong to this pool")
        self._free.setdefault(kind, []).append(address)

    def kind_of(self, address: int) -> str:
        return self._kind_of[address]
