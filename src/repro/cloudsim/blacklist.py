"""Blacklist service simulators: Google Safe Browsing and VirusTotal.

The paper joins WhoWas data with two external detectors (§8.2):

* the **Safe Browsing API** — URL in, status out ("phishing", "malware"
  or "ok");
* **VirusTotal** — IP in, a JSON report of per-engine detections out,
  each with a timestamp and malicious URL; an IP is considered malicious
  only when flagged by ≥ 2 engines (to limit false positives).

Both simulators derive their knowledge from the cloud simulation's
ground truth, through a detection-lag model: an engine notices a
malicious page only some days after it goes live (Figure 19's lag
distribution), and type-2 pages that blink in and out of existence take
longer to catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .services import ServiceSpec
from .simulation import CloudSimulation

__all__ = [
    "SafeBrowsingSim",
    "VirusTotalDetection",
    "VirusTotalReport",
    "VirusTotalSim",
    "is_vt_visible",
]


def is_vt_visible(service: ServiceSpec) -> bool:
    """Whether VirusTotal engines can ever flag this service's IPs."""
    return service.malicious is not None and service.category in (
        "web+vt",
        "vt-hoster",
    )


def _url_live_days(service: ServiceSpec, horizon: int) -> dict[str, list[int]]:
    """Days (absolute) on which each malicious URL is present."""
    behavior = service.malicious
    if behavior is None:
        return {}
    live: dict[str, list[int]] = {}
    start = max(0, service.birth_day)
    end = min(horizon, service.death_day if service.death_day is not None else horizon)
    for day in range(start, end + 1):
        for url in behavior.active_urls(service.day_in_life(day)):
            live.setdefault(url, []).append(day)
    return live


class SafeBrowsingSim:
    """URL blacklist with per-URL listing lag.

    ``lookup(url, day)`` returns "phishing", "malware" or "ok" — the
    shape of the Safe Browsing API response WhoWas queries for every URL
    extracted from fetched pages.
    """

    def __init__(self, simulation: CloudSimulation, *, seed: int = 0,
                 mean_lag_days: float = 2.0, coverage: float = 0.9):
        self._rng = random.Random(seed ^ 0x5AFE)
        self._listed: dict[str, tuple[str, int]] = {}  # url -> (category, day)
        horizon = simulation.workload.duration_days
        for service in simulation.services.values():
            behavior = service.malicious
            if behavior is None:
                continue
            for url, days in _url_live_days(service, horizon).items():
                if not days or self._rng.random() > coverage:
                    continue
                lag = self._rng.expovariate(1.0 / mean_lag_days)
                listed_day = days[0] + max(0, round(lag))
                self._listed[url] = (behavior.category, listed_day)
        self.lookup_count = 0

    def lookup(self, url: str, day: int) -> str:
        """Safe Browsing status of *url* as of *day*."""
        self.lookup_count += 1
        entry = self._listed.get(url)
        if entry is None:
            return "ok"
        category, listed_day = entry
        return category if day >= listed_day else "ok"

    def listed_urls(self) -> dict[str, tuple[str, int]]:
        """All URLs ever listed (for tests): url -> (category, day)."""
        return dict(self._listed)


@dataclass(frozen=True)
class VirusTotalDetection:
    """One engine's detection record inside a VirusTotal IP report."""

    engine: str
    day: int
    url: str
    category: str


@dataclass(frozen=True)
class VirusTotalReport:
    """The (simplified) JSON report VirusTotal returns for one IP."""

    ip: int
    detections: tuple[VirusTotalDetection, ...] = ()
    resolved_domains: tuple[str, ...] = ()

    @property
    def engines(self) -> set[str]:
        return {d.engine for d in self.detections}

    def is_malicious(self, min_engines: int = 2) -> bool:
        """The ≥ 2-engine consensus rule of §8.2."""
        return len(self.engines) >= min_engines

    def first_detection_day(self) -> int | None:
        return min((d.day for d in self.detections), default=None)

    def last_detection_day(self) -> int | None:
        return max((d.day for d in self.detections), default=None)


class VirusTotalSim:
    """Per-IP multi-engine detection reports with lag and false positives.

    Reports are built lazily per IP from the simulation's deployment log:
    every interval during which a VT-visible malicious service held the
    IP can produce detections from several engines, each with its own
    lag and coverage.  A small rate of single-engine false positives is
    injected so the ≥ 2-engine consensus rule has work to do.
    """

    ENGINES = (
        "DrWeb", "Fortinet", "Kaspersky", "Sophos", "Websense",
        "BitDefender", "ESET", "Avira",
    )

    def __init__(self, simulation: CloudSimulation, *, seed: int = 0,
                 engine_coverage: float = 0.55, mean_lag_days: float = 1.5,
                 false_positive_rate: float = 0.001):
        self._simulation = simulation
        self._seed = seed
        self._coverage = engine_coverage
        self._mean_lag = mean_lag_days
        self._fp_rate = false_positive_rate
        self._horizon = simulation.workload.duration_days
        self._live_days_cache: dict[int, dict[str, list[int]]] = {}
        self.report_count = 0

    def report(self, ip: int) -> VirusTotalReport:
        """Fetch the report for one IP (deterministic per (seed, ip))."""
        self.report_count += 1
        rng = random.Random((self._seed << 32) ^ ip ^ 0x717B57)
        detections: list[VirusTotalDetection] = []
        domains: list[str] = []
        for interval in self._simulation.log.intervals_for_ip(ip):
            service = self._simulation.services[interval.service_id]
            if not is_vt_visible(service):
                continue
            behavior = service.malicious
            assert behavior is not None
            live = self._live_days_for(service)
            start = interval.start_day
            end = interval.end_day if interval.end_day is not None else self._horizon
            for url, days in live.items():
                held_days = [d for d in days if start <= d < max(end, start + 1)]
                if not held_days:
                    continue
                domains.append(url.split("/")[2])
                for engine in self.ENGINES:
                    if rng.random() > self._coverage:
                        continue
                    lag = max(0, round(rng.expovariate(1.0 / self._mean_lag)))
                    detect_day = held_days[0] + lag
                    # The engine only logs a detection while the content
                    # is actually up on this IP.
                    visible = [d for d in held_days if d >= detect_day]
                    if not visible:
                        continue
                    detections.append(
                        VirusTotalDetection(
                            engine=engine,
                            day=visible[0],
                            url=url,
                            category=behavior.category,
                        )
                    )
        if not detections and rng.random() < self._fp_rate:
            detections.append(
                VirusTotalDetection(
                    engine=rng.choice(self.ENGINES),
                    day=rng.randrange(self._horizon),
                    url="http://benign.example.com/",
                    category="malware",
                )
            )
        return VirusTotalReport(
            ip=ip,
            detections=tuple(sorted(detections, key=lambda d: d.day)),
            resolved_domains=tuple(sorted(set(domains))),
        )

    def _live_days_for(self, service: ServiceSpec) -> dict[str, list[int]]:
        cached = self._live_days_cache.get(service.service_id)
        if cached is None:
            cached = _url_live_days(service, self._horizon)
            self._live_days_cache[service.service_id] = cached
        return cached
