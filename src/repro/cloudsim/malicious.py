"""Malicious-tenant modelling (§8.2 of the paper).

The paper found small amounts of malicious activity — mostly phishing and
malware hosting — by joining WhoWas data with Google Safe Browsing and
VirusTotal.  This module synthesises the malicious side of the workload:
the domains malicious URLs point at (Table 18's ranking, dominated by
file-hosting services), the three per-IP behaviours of §8.2, and linchpin
pages that aggregate many malware URLs (the Blackhole-kit example).
"""

from __future__ import annotations

import random

from .services import MaliciousBehavior
from .software import WeightedChoice

__all__ = [
    "MALICIOUS_DOMAINS",
    "MaliciousUrlFactory",
]

#: Domains hosting malicious payloads, weighted like Table 18 (file
#: hosting and fake-download sites dominate).
MALICIOUS_DOMAINS: tuple[tuple[str, float], ...] = (
    ("dl.dropboxusercontent.com", 993),
    ("dl.dropbox.com", 936),
    ("download-instantly.com", 295),
    ("tr.im", 268),
    ("www.wishdownload.com", 223),
    ("dlp.playmediaplayer.com", 206),
    ("www.extrimdownloadmanager.com", 128),
    ("dlp.123mediaplayer.com", 122),
    ("install.fusioninstall.com", 120),
    ("www.1disk.cn", 119),
    ("cdn.fastupdates.net", 60),
    ("files.quickstash.info", 45),
    ("get.freevideocodec.org", 40),
    ("mirror.warezbay.ru", 30),
    ("promo.luckyprizes.biz", 25),
    ("secure-login.accounts-verify.net", 20),
    ("signin.bank-update.info", 15),
)


class MaliciousUrlFactory:
    """Draws malicious URLs and behaviours for flagged services."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._domains = WeightedChoice(list(MALICIOUS_DOMAINS))
        self._counter = 0

    def make_url(self, category: str) -> str:
        """One malicious URL; phishing URLs favour lookalike domains."""
        self._counter += 1
        rng = self._rng
        if category == "phishing":
            domain = rng.choice(
                [
                    "secure-login.accounts-verify.net",
                    "signin.bank-update.info",
                    "promo.luckyprizes.biz",
                ]
            )
            path = f"login/session{self._counter}/verify.html"
        else:
            domain = self._domains.sample(rng)
            path = f"s/{self._counter:06d}/setup_{rng.randrange(9999)}.exe"
        return f"http://{domain}/{path}"

    def make_behavior(self, *, linchpin: bool = False) -> MaliciousBehavior:
        """Sample a malicious behaviour for one service.

        §8.2 observed 34 type-1, 42 type-2, and 22 type-3 IPs among the
        98 clustered malicious EC2 IPs; the kind weights follow that mix.
        Most malicious URLs are malware; a small share is phishing
        (9 phishing vs 187 malware pages on EC2 via Safe Browsing).
        """
        rng = self._rng
        category = "phishing" if rng.random() < 0.08 else "malware"
        if linchpin:
            # A linchpin page aggregates on the order of a hundred malware
            # URLs pointing at many domains (the 128-URL Blackhole page).
            urls = tuple(self.make_url("malware") for _ in range(rng.randint(60, 128)))
            return MaliciousBehavior(kind=1, category="malware", urls=urls,
                                     linchpin=True)
        roll = rng.random()
        if roll < 0.35:
            kind = 1
        elif roll < 0.78:
            kind = 2
        else:
            kind = 3
        if kind == 3:
            count = rng.randint(6, 12)   # several distinct pages over time
        else:
            count = rng.randint(1, 7)
        urls = tuple(self.make_url(category) for _ in range(count))
        return MaliciousBehavior(
            kind=kind,
            category=category,
            urls=urls,
            toggle_period=rng.randint(4, 10),
            rotation_period=rng.randint(10, 20),
        )
