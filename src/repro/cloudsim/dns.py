"""Simulated EC2-style DNS with VPC/classic answer semantics (§5).

The paper's cartography exploits an observable quirk of Amazon's DNS:
resolving the EC2-style public hostname of an IP from *inside* the cloud

* returns a **start-of-authority (SOA)** record when no instance is
  active on the IP *and* the IP belongs to classic networking,
* returns a **public IP** (in EC2's space) when the IP is used for VPC,
* returns a **private IP** when a classic instance is active on it.

:class:`CloudDns` reproduces exactly those semantics on top of the
simulator's ground truth, so the cartography engine's decision rule can
be exercised and validated.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .addressing import int_to_ip
from .providers import NetKind, ProviderTopology
from .simulation import CloudSimulation

__all__ = ["DnsAnswer", "CloudDns", "public_hostname"]

_HOSTNAME_RE = re.compile(
    r"^ec2-(\d{1,3})-(\d{1,3})-(\d{1,3})-(\d{1,3})\.[-a-z0-9.]*amazonaws\.com$"
)

#: Base of the synthetic private address range answered for classic
#: instances (maps the public IP 1:1 into 10.0.0.0/8).
_PRIVATE_BASE = 10 << 24


def public_hostname(ip: int, region_suffix: str = "compute-1") -> str:
    """The EC2-style public DNS name of an address (§2)."""
    dashed = int_to_ip(ip).replace(".", "-")
    return f"ec2-{dashed}.{region_suffix}.amazonaws.com"


@dataclass(frozen=True)
class DnsAnswer:
    """Result of one DNS query from inside the cloud."""

    kind: str                   # "A" or "SOA"
    address: int | None = None  # set for A answers

    @property
    def is_soa(self) -> bool:
        return self.kind == "SOA"


class CloudDns:
    """Answers internal DNS queries for the simulated provider."""

    def __init__(self, topology: ProviderTopology,
                 simulation: CloudSimulation | None = None):
        self._topology = topology
        self._simulation = simulation
        #: Query counter, for rate-limit auditing in tests.
        self.query_count = 0

    def resolve(self, hostname: str) -> DnsAnswer:
        """Resolve an EC2-style public hostname from inside the cloud."""
        self.query_count += 1
        match = _HOSTNAME_RE.match(hostname.lower())
        if match is None:
            return DnsAnswer("SOA")
        octets = [int(g) for g in match.groups()]
        if any(o > 255 for o in octets):
            return DnsAnswer("SOA")
        ip = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        if ip not in self._topology.space:
            return DnsAnswer("SOA")
        kind = self._topology.kind_of(ip)
        if kind == NetKind.VPC:
            # VPC IPs always resolve to their public address (c.f. [32]).
            return DnsAnswer("A", ip)
        active = (
            self._simulation is not None
            and self._simulation.owner_of(ip) is not None
        )
        if not active:
            # No instance on a classic IP: no DNS record -> SOA.
            return DnsAnswer("SOA")
        # Active classic instance: internal resolution yields the
        # instance's private address (outside the provider's public space).
        private = _PRIVATE_BASE | (ip & 0x00FFFFFF)
        return DnsAnswer("A", private)

    def in_public_space(self, address: int | None) -> bool:
        """Whether an answer's address falls in the provider's space."""
        return address is not None and address in self._topology.space

    def resolve_domain(self, domain: str) -> list[int]:
        """Active DNS interrogation of a *tenant* domain: the A records
        (current public IPs) of the service operating it, or [] for
        unknown or currently footprint-less domains.

        This is the correlation source the paper's §9 lists as future
        work ("correlate WhoWas data with ... active DNS").
        """
        self.query_count += 1
        if self._simulation is None:
            return []
        service = self._simulation.service_for_domain(domain)
        if service is None or not service.alive_on(self._simulation.day):
            return []
        return sorted(self._simulation.footprint(service.service_id))
